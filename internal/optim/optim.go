// Package optim provides the optimizers the reproduction trains with: plain
// SGD and AdaGrad, each in a dense variant (for the DNN weights) and a
// sparse, per-embedding variant (for the embedding table, where only the
// rows a mini-batch touched are updated).
package optim

import (
	"fmt"
	"math"
)

// Sparse updates one embedding row at a time and may keep per-feature state
// (AdaGrad accumulators). Implementations must be safe for concurrent calls
// on distinct features.
type Sparse interface {
	// Apply updates row (the embedding vector of feature x) in place with
	// gradient grad.
	Apply(x int32, row, grad []float32)
	// Name identifies the rule in experiment reports.
	Name() string
}

// Dense updates a whole parameter tensor in place.
type Dense interface {
	Step(params, grad []float32)
	Name() string
}

// Linearizable is an optional capability of Sparse rules: a rule is linear
// when applying gradients g1 then g2 to a row lands (up to float rounding)
// where applying g1+g2 once would, and the clock advance is the only other
// observable effect. The embedding table's queue-side delta fusion consults
// it — fusing duplicate per-feature deltas is only meaningful for linear
// rules; stateful rules like AdaGrad renormalise each Apply by the running
// accumulator, so fusing would change the trajectory, not just the rounding,
// and they keep the sequential apply.
type Linearizable interface {
	// Linear reports whether Apply is linear in the gradient.
	Linear() bool
}

// IsLinear reports whether s declares the linear-apply capability.
func IsLinear(s Sparse) bool {
	l, ok := s.(Linearizable)
	return ok && l.Linear()
}

// ChunkedDense is an optional capability of Dense rules: StepAt applies the
// same elementwise update as Step restricted to params[offset:offset+len],
// letting the engine sweep one dense step with several goroutines over
// disjoint chunks. Because the update is elementwise, any chunking produces
// bit-identical parameters.
type ChunkedDense interface {
	StepAt(offset int, params, grad []float32)
}

// SGD is stochastic gradient descent with a fixed learning rate.
type SGD struct {
	LR float32
}

// NewSGD returns an SGD rule; it panics on a non-positive learning rate.
func NewSGD(lr float32) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("optim: SGD learning rate must be positive, got %g", lr))
	}
	return &SGD{LR: lr}
}

// Apply implements Sparse.
func (s *SGD) Apply(_ int32, row, grad []float32) {
	for i, g := range grad {
		row[i] -= s.LR * g
	}
}

// Step implements Dense.
func (s *SGD) Step(params, grad []float32) {
	for i, g := range grad {
		params[i] -= s.LR * g
	}
}

// Linear implements Linearizable: SGD keeps no per-feature state and its
// update is a scaled subtraction, so queued deltas may be fused.
func (s *SGD) Linear() bool { return true }

// StepAt implements ChunkedDense; SGD keeps no positional state, so the
// offset is irrelevant.
func (s *SGD) StepAt(_ int, params, grad []float32) { s.Step(params, grad) }

// Name implements Sparse and Dense.
func (s *SGD) Name() string { return "sgd" }

// AdaGrad adapts per-coordinate learning rates by the accumulated squared
// gradient, the standard choice for sparse CTR embeddings where feature
// frequencies span several orders of magnitude.
type AdaGrad struct {
	LR  float32
	Eps float32
	// accum holds the running squared-gradient sums, lazily sized.
	accum []float32
	dim   int
}

// NewAdaGrad returns an AdaGrad rule over numFeatures embeddings of the
// given dimension.
func NewAdaGrad(lr float32, numFeatures, dim int) *AdaGrad {
	if lr <= 0 {
		panic(fmt.Sprintf("optim: AdaGrad learning rate must be positive, got %g", lr))
	}
	return &AdaGrad{LR: lr, Eps: 1e-6, accum: make([]float32, numFeatures*dim), dim: dim}
}

// Apply implements Sparse.
func (a *AdaGrad) Apply(x int32, row, grad []float32) {
	acc := a.accum[int(x)*a.dim : (int(x)+1)*a.dim]
	for i, g := range grad {
		acc[i] += g * g
		row[i] -= a.LR * g / (float32(math.Sqrt(float64(acc[i]))) + a.Eps)
	}
}

// Name implements Sparse.
func (a *AdaGrad) Name() string { return "adagrad" }

// DenseAdaGrad is AdaGrad over one dense tensor.
type DenseAdaGrad struct {
	LR    float32
	Eps   float32
	accum []float32
}

// NewDenseAdaGrad returns a dense AdaGrad rule for a tensor of n parameters.
func NewDenseAdaGrad(lr float32, n int) *DenseAdaGrad {
	if lr <= 0 {
		panic(fmt.Sprintf("optim: AdaGrad learning rate must be positive, got %g", lr))
	}
	return &DenseAdaGrad{LR: lr, Eps: 1e-6, accum: make([]float32, n)}
}

// Step implements Dense.
func (d *DenseAdaGrad) Step(params, grad []float32) {
	d.StepAt(0, params, grad)
}

// StepAt implements ChunkedDense: the accumulator slice is addressed at the
// chunk's offset into the flattened parameter vector, so chunked sweeps and
// a whole-vector Step touch identical accumulator cells.
func (d *DenseAdaGrad) StepAt(offset int, params, grad []float32) {
	acc := d.accum[offset : offset+len(grad)]
	for i, g := range grad {
		acc[i] += g * g
		params[i] -= d.LR * g / (float32(math.Sqrt(float64(acc[i]))) + d.Eps)
	}
}

// Name implements Dense.
func (d *DenseAdaGrad) Name() string { return "adagrad" }
