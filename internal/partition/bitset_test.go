package partition

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	t.Parallel()
	var b Bitset
	if b.Count() != 0 || b.Max() != -1 || b.Members() != nil {
		t.Fatal("zero bitset not empty")
	}
	b.Set(3)
	b.Set(17)
	b.Set(63)
	if !b.Has(3) || !b.Has(17) || !b.Has(63) || b.Has(4) {
		t.Fatal("Has wrong after Set")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if b.Max() != 63 {
		t.Fatalf("Max = %d, want 63", b.Max())
	}
	got := b.Members()
	want := []int{3, 17, 63}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	b.Clear(17)
	if b.Has(17) || b.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	b.Clear(17) // idempotent
	if b.Count() != 2 {
		t.Fatal("double Clear changed count")
	}
}

func TestBitsetProperty(t *testing.T) {
	t.Parallel()
	// Property: Members() round-trips through Set.
	f := func(raw uint64) bool {
		b := Bitset(raw)
		var rebuilt Bitset
		for _, p := range b.Members() {
			rebuilt.Set(p)
		}
		return rebuilt == b && b.Count() == len(b.Members())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
