package partition

import (
	"fmt"
	"testing"

	"hetgmp/internal/dataset"
	"hetgmp/internal/obs"
)

// TestHybridRoundStatsPopulated checks the per-round pass accounting: every
// round records its move counts and pass wall times, and movement tapers as
// Algorithm 1 converges.
func TestHybridRoundStatsPopulated(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 2e-4)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 3
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var totalMoves int64
	for i, rs := range res.Rounds {
		if rs.SampleMoves < 0 || rs.FeatureMoves < 0 {
			t.Errorf("round %d: negative move counts %d/%d", rs.Round, rs.SampleMoves, rs.FeatureMoves)
		}
		totalMoves += rs.SampleMoves + rs.FeatureMoves
		if rs.SamplePass < 0 || rs.FeaturePass < 0 || rs.ReplicatePass < 0 {
			t.Errorf("round %d: negative pass times", rs.Round)
		}
		if rs.SamplePass+rs.FeaturePass+rs.ReplicatePass > rs.Elapsed {
			t.Errorf("round %d: pass times exceed cumulative elapsed", rs.Round)
		}
		if rs.CommTotal < 0 {
			t.Errorf("round %d: negative comm total %v", rs.Round, rs.CommTotal)
		}
		_ = i
	}
	if totalMoves == 0 {
		t.Error("no moves recorded across any round")
	}
	first, last := res.Rounds[0], res.Rounds[len(res.Rounds)-1]
	if last.SampleMoves > first.SampleMoves {
		t.Errorf("sample moves grew: round 1 %d, final round %d", first.SampleMoves, last.SampleMoves)
	}
}

// TestHybridObsMetrics checks the registry view: per-round gauges mirror the
// RoundStat ledger, improvements are the consecutive remote-access deltas,
// and the totals line up.
func TestHybridObsMetrics(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 2e-4)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 3
	reg := obs.NewRegistry(1)
	cfg.Obs = reg
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	if m, ok := snap.Get("partition.rounds"); !ok || m.Gauge != float64(len(res.Rounds)) {
		t.Errorf("partition.rounds = %v, want %d", m.Gauge, len(res.Rounds))
	}
	last := res.Rounds[len(res.Rounds)-1]
	if m, ok := snap.Get("partition.remote_accesses"); !ok || m.Gauge != float64(last.RemoteAccesses) {
		t.Errorf("partition.remote_accesses = %v, want %d", m.Gauge, last.RemoteAccesses)
	}

	var wantSamples, wantFeatures int64
	for _, rs := range res.Rounds {
		wantSamples += rs.SampleMoves
		wantFeatures += rs.FeatureMoves
		name := fmt.Sprintf("partition.round.%02d.remote_accesses", rs.Round)
		if m, ok := snap.Get(name); !ok || m.Gauge != float64(rs.RemoteAccesses) {
			t.Errorf("%s = %v, want %d", name, m.Gauge, rs.RemoteAccesses)
		}
	}
	if m, ok := snap.Get("partition.moves.samples"); !ok || m.Value != wantSamples {
		t.Errorf("partition.moves.samples = %d, want %d", m.Value, wantSamples)
	}
	if m, ok := snap.Get("partition.moves.features"); !ok || m.Value != wantFeatures {
		t.Errorf("partition.moves.features = %d, want %d", m.Value, wantFeatures)
	}

	for r := 2; r <= len(res.Rounds); r++ {
		name := fmt.Sprintf("partition.round.%02d.improvement", r)
		m, ok := snap.Get(name)
		if !ok {
			t.Errorf("%s missing", name)
			continue
		}
		want := res.Rounds[r-2].RemoteAccesses - res.Rounds[r-1].RemoteAccesses
		if m.Gauge != float64(want) {
			t.Errorf("%s = %v, want %d", name, m.Gauge, want)
		}
	}
}

// TestHybridObsDoesNotChangeAssignment is the partitioner's no-observer
// relation: attaching a registry must not perturb the output.
func TestHybridObsDoesNotChangeAssignment(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 1e-4)
	cfg := DefaultHybridConfig(4)
	cfg.Rounds = 2
	plain, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry(1)
	observed, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Assignment.SampleOf {
		if plain.Assignment.SampleOf[i] != observed.Assignment.SampleOf[i] {
			t.Fatal("sample assignment changed with obs attached")
		}
	}
	for x := range plain.Assignment.PrimaryOf {
		if plain.Assignment.PrimaryOf[x] != observed.Assignment.PrimaryOf[x] {
			t.Fatal("primary assignment changed with obs attached")
		}
	}
}
