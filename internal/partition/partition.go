// Package partition implements the paper's hybrid iterative graph
// partitioning (Section 5.2, Algorithm 1) together with the baselines it is
// evaluated against: random partitioning, BiCut (Chen et al. 2015), and a
// METIS-like multilevel clusterer used for the co-occurrence analysis of
// Figure 3.
//
// A partitioning assigns every sample vertex and every embedding vertex a
// home partition (1D edge-cut), and optionally replicates high-score
// embedding vertices into additional partitions as secondaries (2D
// vertex-cut). Quality is measured as the number of remote embedding
// accesses an epoch of training would perform — the exact metric of the
// paper's Table 3.
package partition

import (
	"fmt"
	"math"

	"hetgmp/internal/bigraph"
)

// Assignment is the output of a partitioner over a bigraph.
type Assignment struct {
	// N is the number of partitions (workers).
	N int
	// SampleOf[s] is the partition that trains sample s.
	SampleOf []int
	// PrimaryOf[x] is the partition holding the primary replica of
	// embedding x.
	PrimaryOf []int
	// replicas[x] is a bitset over partitions holding a secondary replica
	// of embedding x (the primary's bit is never set).
	replicas []Bitset
}

// NewAssignment allocates an assignment for the given bigraph sizes with
// all vertices unassigned (-1).
func NewAssignment(n, numSamples, numFeatures int) *Assignment {
	if n <= 0 || n > MaxPartitions {
		panic(fmt.Sprintf("partition: partition count %d out of [1,%d]", n, MaxPartitions))
	}
	a := &Assignment{
		N:         n,
		SampleOf:  make([]int, numSamples),
		PrimaryOf: make([]int, numFeatures),
		replicas:  make([]Bitset, numFeatures),
	}
	for i := range a.SampleOf {
		a.SampleOf[i] = -1
	}
	for i := range a.PrimaryOf {
		a.PrimaryOf[i] = -1
	}
	return a
}

// HasReplica reports whether partition p holds a secondary replica of x.
func (a *Assignment) HasReplica(x int32, p int) bool { return a.replicas[x].Has(p) }

// IsLocal reports whether embedding x can be read on partition p without a
// remote fetch, i.e. p holds either the primary or a secondary replica.
func (a *Assignment) IsLocal(x int32, p int) bool {
	return a.PrimaryOf[x] == p || a.replicas[x].Has(p)
}

// AddReplica marks a secondary replica of x on partition p. Replicating
// onto the primary partition is a no-op.
func (a *Assignment) AddReplica(x int32, p int) {
	if a.PrimaryOf[x] == p {
		return
	}
	a.replicas[x].Set(p)
}

// ClearReplicas removes all secondary replicas of x.
func (a *Assignment) ClearReplicas(x int32) { a.replicas[x] = 0 }

// Replicas returns the partitions holding secondary replicas of x.
func (a *Assignment) Replicas(x int32) []int { return a.replicas[x].Members() }

// ReplicaCount returns the number of secondary replicas of x.
func (a *Assignment) ReplicaCount(x int32) int { return a.replicas[x].Count() }

// SecondariesOn lists the embeddings with a secondary replica on partition p.
func (a *Assignment) SecondariesOn(p int) []int32 {
	var out []int32
	for x := range a.replicas {
		if a.replicas[x].Has(p) {
			out = append(out, int32(x))
		}
	}
	return out
}

// Validate checks internal consistency: every vertex assigned, partitions in
// range, no replica bit set on a primary partition.
func (a *Assignment) Validate() error {
	for s, p := range a.SampleOf {
		if p < 0 || p >= a.N {
			return fmt.Errorf("partition: sample %d assigned to invalid partition %d", s, p)
		}
	}
	for x, p := range a.PrimaryOf {
		if p < 0 || p >= a.N {
			return fmt.Errorf("partition: embedding %d primary on invalid partition %d", x, p)
		}
		if a.replicas[x].Has(p) {
			return fmt.Errorf("partition: embedding %d has replica bit on its primary partition %d", x, p)
		}
		if hi := a.replicas[x].Max(); hi >= a.N {
			return fmt.Errorf("partition: embedding %d has replica on invalid partition %d", x, hi)
		}
	}
	return nil
}

// Quality summarises a partitioning the way the paper's Table 3 and Figure 9
// do.
type Quality struct {
	// RemoteAccesses is the number of (sample, embedding) edges whose
	// embedding is not local (neither primary nor secondary) to the
	// sample's partition — remote embedding communications per epoch.
	RemoteAccesses int64
	// WeightedCost is RemoteAccesses with each access priced by the
	// topology weight matrix (1 if weights are nil).
	WeightedCost float64
	// LocalFraction is 1 − RemoteAccesses/edges.
	LocalFraction float64
	// ReplicationFactor is total replicas (primary+secondary) per
	// embedding, averaged.
	ReplicationFactor float64
	// SampleImbalance and FeatureImbalance are max/mean ratios of per-
	// partition vertex counts (1.0 = perfectly balanced).
	SampleImbalance  float64
	FeatureImbalance float64
	// SamplesPerPart and PrimariesPerPart are the raw per-partition loads.
	SamplesPerPart   []int
	PrimariesPerPart []int
	SecondariesPer   []int
}

// Evaluate measures the assignment against its bigraph. weights may be nil
// for uniform pricing; otherwise weights[from][to] prices a fetch of an
// embedding whose primary lives on from by a sample on to.
func Evaluate(g *bigraph.Bigraph, a *Assignment, weights [][]float64) Quality {
	var q Quality
	q.SamplesPerPart = make([]int, a.N)
	q.PrimariesPerPart = make([]int, a.N)
	q.SecondariesPer = make([]int, a.N)
	for _, p := range a.SampleOf {
		q.SamplesPerPart[p]++
	}
	var replicaTotal int64
	for x := range a.PrimaryOf {
		q.PrimariesPerPart[a.PrimaryOf[x]]++
		replicaTotal += 1 + int64(a.replicas[x].Count())
	}
	for p := 0; p < a.N; p++ {
		q.SecondariesPer[p] = len(a.SecondariesOn(p))
	}
	for s := 0; s < g.NumSamples; s++ {
		p := a.SampleOf[s]
		for _, x := range g.SampleFeatures(s) {
			if a.IsLocal(x, p) {
				continue
			}
			q.RemoteAccesses++
			if weights != nil {
				q.WeightedCost += weights[a.PrimaryOf[x]][p]
			} else {
				q.WeightedCost++
			}
		}
	}
	edges := g.NumEdges()
	if edges > 0 {
		q.LocalFraction = 1 - float64(q.RemoteAccesses)/float64(edges)
	}
	if g.NumFeatures > 0 {
		q.ReplicationFactor = float64(replicaTotal) / float64(g.NumFeatures)
	}
	q.SampleImbalance = imbalance(q.SamplesPerPart)
	q.FeatureImbalance = imbalance(q.PrimariesPerPart)
	return q
}

func imbalance(loads []int) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max float64
	for _, l := range loads {
		v := float64(l)
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// TrafficMatrix predicts the per-pair embedding fetch volume (in accesses)
// the assignment implies: entry [from][to] counts fetches of embeddings
// primary on from by samples on to. It is the partitioner-side analogue of
// the paper's Figure 9b heatmap.
func TrafficMatrix(g *bigraph.Bigraph, a *Assignment) [][]int64 {
	m := make([][]int64, a.N)
	for i := range m {
		m[i] = make([]int64, a.N)
	}
	for s := 0; s < g.NumSamples; s++ {
		p := a.SampleOf[s]
		for _, x := range g.SampleFeatures(s) {
			if a.IsLocal(x, p) {
				m[p][p]++ // local hit
				continue
			}
			m[a.PrimaryOf[x]][p]++
		}
	}
	return m
}

// normalizedEntropy returns the entropy of the load distribution divided by
// log(n); 1.0 means perfectly even. Used by tests and diagnostics.
func normalizedEntropy(loads []int) float64 {
	var tot float64
	for _, l := range loads {
		tot += float64(l)
	}
	if tot == 0 || len(loads) < 2 {
		return 1
	}
	var h float64
	for _, l := range loads {
		if l == 0 {
			continue
		}
		p := float64(l) / tot
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(len(loads)))
}
