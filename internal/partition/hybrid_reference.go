package partition

import "sort"

// The strictly sequential greedy — the pre-parallel implementation, kept as
// the quality and wall-time baseline behind HybridConfig.Reference. Every
// vertex scores against fully up-to-date state, so this path defines the
// greedy semantics the chunked-delta passes approximate; perfbench records
// both so BENCH_partition.json carries the speedup trajectory.

// refPassSamples performs the sample-vertex half of the 1D pass: each
// sample moves to the partition minimising δc + δb.
//
// All score terms are normalised to comparable O(1) units: δc by the
// sample's maximum possible cost, the load gap δξ by the average load, and
// the communication gap δd by the average communication. Partitions at the
// hard balance cap are not candidates.
func (st *hybridState) refPassSamples(order []int32) {
	n := st.a.N
	avgSamp := float64(st.g.NumSamples) / float64(n)
	capSamp := int(avgSamp*(1+st.slack())) + 1
	costs := make([]float64, n)
	for _, s32 := range order {
		s := int(s32)
		cur := st.a.SampleOf[s]
		feats := st.g.SampleFeatures(s)

		// δc(v→i): priced fetches of this sample's non-local embeddings,
		// normalised by the worst case (every feature remote at max
		// weight).
		for i := 0; i < n; i++ {
			costs[i] = 0
		}
		var worst float64
		for _, x := range feats {
			home := st.a.PrimaryOf[x]
			var wmax float64
			for i := 0; i < n; i++ {
				w := st.weight(home, i)
				if home != i {
					costs[i] += w
				}
				if w > wmax {
					wmax = w
				}
			}
			worst += wmax
		}
		if worst == 0 {
			worst = 1
		}
		avgComm := st.commAvg()
		normComm := avgComm
		if normComm == 0 {
			normComm = 1
		}
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if i != cur && st.nSamp[i] >= capSamp {
				continue
			}
			load := st.nSamp[i]
			if i != cur {
				load++ // marginal: the sample would join i
			}
			deltaXi := (float64(load) - avgSamp) / avgSamp
			deltaD := (st.comm[i] - avgComm) / normComm
			score := costs[i]/worst + st.cfg.Alpha*deltaXi + st.cfg.Gamma*deltaD
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best >= 0 && best != cur {
			st.moveSample(s, cur, best)
		}
	}
}

// refPassFeatures performs the embedding-vertex half of the 1D pass: each
// embedding's primary moves to the partition minimising δc + δb, with the
// same normalisation and hard cap as the sample pass.
func (st *hybridState) refPassFeatures(order []int32) {
	n := st.a.N
	avgFeat := float64(st.g.NumFeatures) / float64(n)
	capFeat := int(avgFeat*(1+st.slack())) + 1
	// Worst case per unit of degree: the maximum pairwise weight.
	var wmax float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w := st.weight(i, j); w > wmax {
				wmax = w
			}
		}
	}
	for _, x := range order {
		cur := st.a.PrimaryOf[x]
		row := st.counts.Row(x)
		avgComm := st.commAvg()
		normComm := avgComm
		if normComm == 0 {
			normComm = 1
		}
		worst := float64(st.g.Degree[x]) * wmax
		if worst == 0 {
			worst = 1
		}
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if i != cur && st.nFeat[i] >= capFeat {
				continue
			}
			// δc: samples elsewhere fetch x from candidate home i.
			var c float64
			for j, cnt := range row {
				if j == i || cnt == 0 {
					continue
				}
				c += float64(cnt) * st.weight(i, j)
			}
			load := st.nFeat[i]
			if i != cur {
				load++
			}
			deltaX := (float64(load) - avgFeat) / avgFeat
			deltaD := (st.comm[i] - avgComm) / normComm
			score := c/worst + st.cfg.Beta*deltaX + st.cfg.Gamma*deltaD
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best >= 0 && best != cur {
			st.moveFeature(x, cur, best)
		}
	}
}

// refReplicate performs the 2D vertex-cut pass by collecting every candidate
// and fully sorting per partition — the full-vocabulary scan + sort the
// top-k-heap path (replicateTopK) replaces.
func (st *hybridState) refReplicate(order []int32) {
	budget := st.cfg.ReplicaBudget
	if budget == 0 {
		budget = int(st.cfg.ReplicaFraction * float64(st.g.NumFeatures))
	}
	if budget <= 0 {
		return
	}
	for i := 0; i < st.a.N; i++ {
		cands := make([]candPair, 0, 1024)
		for _, x := range order {
			if st.a.PrimaryOf[x] == i {
				continue
			}
			if c := st.counts.Count(x, i); c > 0 {
				cands = append(cands, candPair{x: x, c: c})
			}
		}
		sort.Slice(cands, func(p, q int) bool {
			if cands[p].c != cands[q].c {
				return cands[p].c > cands[q].c
			}
			return cands[p].x < cands[q].x
		})
		// Re-derive this round's replica set from scratch: primaries may
		// have moved since last round, invalidating earlier choices.
		for _, x := range st.refPrevSecondaries(i) {
			st.a.replicas[x].Clear(i)
		}
		for k := 0; k < len(cands) && k < budget; k++ {
			st.a.AddReplica(cands[k].x, i)
		}
	}
}

// refPrevSecondaries lists embeddings currently replicated on partition i by
// scanning every replica bitset — O(F) per partition.
func (st *hybridState) refPrevSecondaries(i int) []int32 {
	var out []int32
	for x := range st.a.replicas {
		if st.a.replicas[x].Has(i) {
			out = append(out, int32(x))
		}
	}
	return out
}
