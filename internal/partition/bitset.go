package partition

import "math/bits"

// MaxPartitions bounds the partition count a single Bitset word can track.
// The paper's largest experiment uses 24 GPUs; 64 leaves ample headroom
// while keeping the per-embedding replica set a single machine word — with
// tens of millions of embedding vertices that compactness matters.
const MaxPartitions = 64

// Bitset is a set of partition indices in [0, MaxPartitions).
type Bitset uint64

// Has reports whether p is in the set.
func (b Bitset) Has(p int) bool { return b&(1<<uint(p)) != 0 }

// Set adds p to the set.
func (b *Bitset) Set(p int) { *b |= 1 << uint(p) }

// Clear removes p from the set.
func (b *Bitset) Clear(p int) { *b &^= 1 << uint(p) }

// Count returns the set's cardinality.
func (b Bitset) Count() int { return bits.OnesCount64(uint64(b)) }

// Max returns the largest member, or -1 when empty.
func (b Bitset) Max() int {
	if b == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(b))
}

// Members lists the set's elements in ascending order.
func (b Bitset) Members() []int {
	if b == 0 {
		return nil
	}
	out := make([]int, 0, b.Count())
	for v := uint64(b); v != 0; {
		p := bits.TrailingZeros64(v)
		out = append(out, p)
		v &^= 1 << uint(p)
	}
	return out
}
