package partition

import (
	"testing"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/dataset"
)

// tinyGraph builds the hand-written bigraph used by exact-count tests:
// 4 samples × 2 fields over 5 features.
func tinyGraph() *bigraph.Bigraph {
	mk := func(a, b int32) dataset.Sample {
		return dataset.Sample{Features: []int32{a, b}, Label: 1}
	}
	return bigraph.FromDataset(&dataset.Dataset{
		Name: "tiny", NumFields: 2, NumFeatures: 5,
		FieldOffset: []int32{0, 2, 5},
		Samples: []dataset.Sample{
			mk(0, 2), mk(0, 3), mk(1, 2), mk(0, 4),
		},
	})
}

func testDataset(t *testing.T, name string, scale float64) *bigraph.Bigraph {
	t.Helper()
	ds, err := dataset.New(name, scale, 31)
	if err != nil {
		t.Fatal(err)
	}
	return bigraph.FromDataset(ds)
}

func TestNewAssignmentUnassigned(t *testing.T) {
	t.Parallel()
	a := NewAssignment(4, 3, 5)
	for _, p := range a.SampleOf {
		if p != -1 {
			t.Fatal("samples not initialised to -1")
		}
	}
	for _, p := range a.PrimaryOf {
		if p != -1 {
			t.Fatal("features not initialised to -1")
		}
	}
}

func TestNewAssignmentPanics(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, -1, MaxPartitions + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAssignment(%d) accepted", n)
				}
			}()
			NewAssignment(n, 1, 1)
		}()
	}
}

func TestReplicaOperations(t *testing.T) {
	t.Parallel()
	a := NewAssignment(4, 2, 3)
	a.PrimaryOf[0] = 1
	a.AddReplica(0, 2)
	a.AddReplica(0, 1) // primary partition: no-op
	if !a.HasReplica(0, 2) {
		t.Error("replica on 2 missing")
	}
	if a.HasReplica(0, 1) {
		t.Error("replica allowed on primary partition")
	}
	if !a.IsLocal(0, 1) || !a.IsLocal(0, 2) || a.IsLocal(0, 3) {
		t.Error("IsLocal wrong")
	}
	if got := a.ReplicaCount(0); got != 1 {
		t.Errorf("ReplicaCount = %d", got)
	}
	if got := a.Replicas(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("Replicas = %v", got)
	}
	a.ClearReplicas(0)
	if a.ReplicaCount(0) != 0 {
		t.Error("ClearReplicas failed")
	}
}

func TestSecondariesOn(t *testing.T) {
	t.Parallel()
	a := NewAssignment(3, 1, 4)
	for x := range a.PrimaryOf {
		a.PrimaryOf[x] = 0
	}
	a.AddReplica(1, 2)
	a.AddReplica(3, 2)
	got := a.SecondariesOn(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("SecondariesOn(2) = %v", got)
	}
	if a.SecondariesOn(1) != nil {
		t.Error("SecondariesOn(1) should be empty")
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	g := tinyGraph()
	a := Random(g, 3, 1)
	if err := a.Validate(); err != nil {
		t.Errorf("random assignment invalid: %v", err)
	}
	a.SampleOf[0] = 7
	if err := a.Validate(); err == nil {
		t.Error("out-of-range sample accepted")
	}
	a.SampleOf[0] = 0
	a.PrimaryOf[0] = -1
	if err := a.Validate(); err == nil {
		t.Error("unassigned feature accepted")
	}
	a.PrimaryOf[0] = 1
	a.replicas[0].Set(1) // replica bit on the primary partition
	if err := a.Validate(); err == nil {
		t.Error("replica-on-primary accepted")
	}
}

func TestEvaluateExactCounts(t *testing.T) {
	t.Parallel()
	g := tinyGraph()
	a := NewAssignment(2, g.NumSamples, g.NumFeatures)
	// Samples 0,1 → 0; samples 2,3 → 1.
	copy(a.SampleOf, []int{0, 0, 1, 1})
	// Features 0,2 → 0; features 1,3,4 → 1.
	copy(a.PrimaryOf, []int{0, 1, 0, 1, 1})
	q := Evaluate(g, a, nil)
	// Edges: s0(0,2) local,local; s1(0,3): local, remote(3 on 1);
	// s2(1,2): local(1 on 1), remote(2 on 0); s3(0,4): remote(0), local(4).
	if q.RemoteAccesses != 3 {
		t.Fatalf("RemoteAccesses = %d, want 3", q.RemoteAccesses)
	}
	if q.LocalFraction != 1-3.0/8 {
		t.Errorf("LocalFraction = %v", q.LocalFraction)
	}
	if q.ReplicationFactor != 1 {
		t.Errorf("ReplicationFactor = %v, want 1", q.ReplicationFactor)
	}
	// Replicating feature 3 on partition 0 removes one remote access.
	a.AddReplica(3, 0)
	q2 := Evaluate(g, a, nil)
	if q2.RemoteAccesses != 2 {
		t.Errorf("after replica: RemoteAccesses = %d, want 2", q2.RemoteAccesses)
	}
	if q2.ReplicationFactor != 1.2 {
		t.Errorf("ReplicationFactor = %v, want 1.2", q2.ReplicationFactor)
	}
}

func TestEvaluateWeighted(t *testing.T) {
	t.Parallel()
	g := tinyGraph()
	a := NewAssignment(2, g.NumSamples, g.NumFeatures)
	copy(a.SampleOf, []int{0, 0, 1, 1})
	copy(a.PrimaryOf, []int{0, 1, 0, 1, 1})
	w := [][]float64{{0, 5}, {5, 0}}
	q := Evaluate(g, a, w)
	if q.WeightedCost != 15 { // 3 remote × weight 5
		t.Errorf("WeightedCost = %v, want 15", q.WeightedCost)
	}
}

func TestTrafficMatrixSums(t *testing.T) {
	t.Parallel()
	g := tinyGraph()
	a := NewAssignment(2, g.NumSamples, g.NumFeatures)
	copy(a.SampleOf, []int{0, 0, 1, 1})
	copy(a.PrimaryOf, []int{0, 1, 0, 1, 1})
	m := TrafficMatrix(g, a)
	var total int64
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("traffic total %d, want %d edges", total, g.NumEdges())
	}
	// Diagonal holds local accesses: 8 − 3 remote = 5.
	if m[0][0]+m[1][1] != 5 {
		t.Errorf("local accesses %d, want 5", m[0][0]+m[1][1])
	}
	if m[1][0] != 1 { // feature 3 (primary on 1) fetched by sample 1 on 0
		t.Errorf("m[1][0] = %d, want 1", m[1][0])
	}
}

func TestRandomCoversAllPartitions(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 1e-4)
	a := Random(g, 8, 5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a, nil)
	for p, c := range q.SamplesPerPart {
		if c == 0 {
			t.Errorf("partition %d has no samples", p)
		}
	}
	if q.SampleImbalance > 1.2 {
		t.Errorf("random imbalance %v too high", q.SampleImbalance)
	}
	// Random placement leaves ~1/N locality.
	if q.LocalFraction > 0.25 {
		t.Errorf("random local fraction %v suspiciously high", q.LocalFraction)
	}
}

func TestRandomDeterministic(t *testing.T) {
	t.Parallel()
	g := tinyGraph()
	a := Random(g, 4, 9)
	b := Random(g, 4, 9)
	for i := range a.SampleOf {
		if a.SampleOf[i] != b.SampleOf[i] {
			t.Fatal("random assignment not deterministic")
		}
	}
	c := Random(g, 4, 10)
	diff := false
	for i := range a.PrimaryOf {
		if a.PrimaryOf[i] != c.PrimaryOf[i] {
			diff = true
			break
		}
	}
	if !diff && g.NumFeatures > 1 {
		t.Error("different seeds gave identical assignment")
	}
}

func TestNormalizedEntropy(t *testing.T) {
	t.Parallel()
	if got := normalizedEntropy([]int{10, 10, 10, 10}); got < 0.999 {
		t.Errorf("even loads entropy %v, want ~1", got)
	}
	if got := normalizedEntropy([]int{40, 0, 0, 0}); got != 0 {
		t.Errorf("concentrated entropy %v, want 0", got)
	}
	if got := normalizedEntropy(nil); got != 1 {
		t.Errorf("empty entropy %v, want 1", got)
	}
}

func TestImbalance(t *testing.T) {
	t.Parallel()
	if got := imbalance([]int{10, 10}); got != 1 {
		t.Errorf("balanced imbalance %v", got)
	}
	if got := imbalance([]int{30, 10}); got != 1.5 {
		t.Errorf("imbalance %v, want 1.5", got)
	}
	if got := imbalance(nil); got != 1 {
		t.Errorf("empty imbalance %v", got)
	}
}
