package partition

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/invariant"
	"hetgmp/internal/obs"
	"hetgmp/internal/xrand"
)

// HybridConfig parameterises Algorithm 1 of the paper.
type HybridConfig struct {
	// Partitions is N, the number of workers.
	Partitions int
	// Rounds is T, the number of 1D+2D iterations. The paper evaluates 1,
	// 3 and 5 rounds (Table 3); gains flatten after ~5.
	Rounds int
	// Alpha, Beta and Gamma weight the balance terms δξ (sample count),
	// δx (embedding count) and δd (communication balance) of Eq. 4.
	Alpha, Beta, Gamma float64
	// Weights is the heterogeneous bandwidth cost matrix from
	// cluster.Topology.WeightMatrix; nil means uniform (homogeneous) cost,
	// Eq. 3 unweighted.
	Weights [][]float64
	// ReplicaFraction is the share of the embedding vocabulary replicated
	// as secondaries into each partition during the 2D pass; the paper uses
	// the top 1 % (Section 7, "Experimental Setting"). Zero disables the 2D
	// pass entirely, yielding the 1D-only ablation.
	ReplicaFraction float64
	// ReplicaBudget, when positive, overrides ReplicaFraction with an
	// absolute per-partition secondary count (the "GPU memory budget" of
	// Algorithm 1 line 9).
	ReplicaBudget int
	// BalanceSlack is a hard per-partition load cap at (1+slack)·avg for
	// both vertex types. The paper balances through the soft δb score
	// alone; a hard cap makes the implementation robust to any α/β/γ
	// setting (a partition at its cap is simply not a candidate).
	// Default 0.1.
	BalanceSlack float64
	Seed         uint64

	// Parallelism caps the scoring goroutines of the chunked-delta passes;
	// 0 means GOMAXPROCS. The assignment is a pure function of the graph
	// and the seed — never of Parallelism or DeltaBlock — because the
	// parallel chunks only precompute the pass-constant δc cost vectors
	// and a single reducer makes every greedy decision in canonical order
	// against live balance state (see hybrid_parallel.go).
	Parallelism int
	// DeltaBlock is the number of vertices whose δc vectors are
	// precomputed per scoring wave — a streaming-granularity / memory
	// knob (block × Partitions float64s) with no effect on the output.
	// 0 picks a size proportional to the vertex set.
	DeltaBlock int
	// Reference selects the strictly sequential one-vertex-at-a-time
	// greedy (the pre-parallel implementation): every vertex scores
	// against fully up-to-date state. It is the quality and wall-time
	// baseline the perfbench harness compares the chunked passes against.
	Reference bool
	// CheckInvariants enables partition-accounting checks (maintained
	// per-partition load/communication totals vs. from-scratch
	// recomputation at round boundaries) even outside `go test`.
	CheckInvariants bool
	// Obs, when non-nil, receives per-round partitioner metrics (Algorithm 1
	// progression: remote-access improvement, move counts, pass timings).
	// All metrics are emitted once per round from the single-threaded round
	// loop; nothing touches the parallel scoring goroutines.
	Obs *obs.Registry
}

// DefaultHybridConfig returns the paper's settings for n partitions:
// 5 rounds, top-1% replication, and balance weights that keep both vertex
// types within a few percent of even.
func DefaultHybridConfig(n int) HybridConfig {
	return HybridConfig{
		Partitions:      n,
		Rounds:          5,
		Alpha:           1.0,
		Beta:            1.0,
		Gamma:           0.5,
		ReplicaFraction: 0.01,
		BalanceSlack:    0.1,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c *HybridConfig) Validate() error {
	switch {
	case c.Partitions <= 0 || c.Partitions > MaxPartitions:
		return fmt.Errorf("partition: Partitions %d out of [1,%d]", c.Partitions, MaxPartitions)
	case c.Rounds <= 0:
		return fmt.Errorf("partition: Rounds must be positive, got %d", c.Rounds)
	case c.ReplicaFraction < 0 || c.ReplicaFraction > 1:
		return fmt.Errorf("partition: ReplicaFraction %g out of [0,1]", c.ReplicaFraction)
	case c.ReplicaBudget < 0:
		return fmt.Errorf("partition: ReplicaBudget must be non-negative, got %d", c.ReplicaBudget)
	case c.BalanceSlack < 0:
		return fmt.Errorf("partition: BalanceSlack must be non-negative, got %g", c.BalanceSlack)
	case c.Parallelism < 0:
		return fmt.Errorf("partition: Parallelism must be non-negative, got %d", c.Parallelism)
	case c.DeltaBlock < 0:
		return fmt.Errorf("partition: DeltaBlock must be non-negative, got %d", c.DeltaBlock)
	case c.Weights != nil && len(c.Weights) != c.Partitions:
		return fmt.Errorf("partition: weight matrix is %d×?, want %d×%d",
			len(c.Weights), c.Partitions, c.Partitions)
	}
	return nil
}

// RoundStat records partition quality after one full 1D+2D round, the rows
// of the paper's Table 3 ("Ours (1 round)", "Ours (3 rounds)", ...), plus
// the round's work profile: how many greedy relocations each 1D pass made
// and where the wall time went.
type RoundStat struct {
	Round          int
	RemoteAccesses int64
	Elapsed        time.Duration // cumulative wall time through this round

	// SampleMoves and FeatureMoves count the greedy relocations the round's
	// 1D passes performed; rounds converge as these approach zero.
	SampleMoves  int64
	FeatureMoves int64
	// CommTotal is Σ δc(Gi) after the round — the priced remote-access
	// objective of Eq. 3 the moves minimise.
	CommTotal float64
	// Per-pass wall time within this round.
	SamplePass    time.Duration
	FeaturePass   time.Duration
	ReplicatePass time.Duration
}

// HybridResult is the partitioner output plus per-round history.
type HybridResult struct {
	Assignment *Assignment
	Rounds     []RoundStat
}

// Hybrid runs Algorithm 1: iterative 1D edge-cut vertex assignment guided by
// the score δg = δc + δb, followed by a 2D vertex-cut pass that replicates
// the highest-δp embeddings into each partition up to the memory budget.
//
// The 1D passes run as parallel chunked-delta sweeps (see DESIGN.md): for
// each fixed block of the visit order, scoring goroutines precompute the
// pass-constant δc cost vectors concurrently, then a single reducer makes
// every greedy decision in canonical order against live balance state. The
// output is bit-identical for a fixed seed regardless of GOMAXPROCS,
// cfg.Parallelism or cfg.DeltaBlock. Set cfg.Reference for the strictly
// sequential pre-parallel baseline.
//
// Note on Eq. 2's sign: the paper writes δg = δc − δb but describes δb as
// "the marginal cost of adding vertex v to partition Gi ... used to balance
// workloads". A cost must make crowded partitions less attractive under
// argmin, so this implementation adds the balance penalty: δg = δc + δb.
func Hybrid(g *bigraph.Bigraph, cfg HybridConfig) (*HybridResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := cfg.Partitions
	a := Random(g, n, cfg.Seed)
	counts := bigraph.NewCountTable(g, n, a.SampleOf)

	st := &hybridState{
		g:           g,
		a:           a,
		cfg:         cfg,
		counts:      counts,
		nSamp:       make([]int, n),
		nFeat:       make([]int, n),
		comm:        make([]float64, n),
		secondaries: make([][]int32, n),
		check:       invariant.Auto(cfg.CheckInvariants),
	}
	for _, p := range a.SampleOf {
		st.nSamp[p]++
	}
	for _, p := range a.PrimaryOf {
		st.nFeat[p]++
	}
	st.recomputeComm()

	// Deterministic visit orders: samples shuffled once, embeddings by
	// descending degree so the heaviest vertices choose their homes first.
	rng := xrand.New(cfg.Seed ^ 0x1d1d1d1d1d1d1d1d)
	sampleOrder := rng.Perm32(g.NumSamples)
	featOrder := make([]int32, g.NumFeatures)
	for i := range featOrder {
		featOrder[i] = int32(i)
	}
	sortFeatByDegree(featOrder, g.Degree)

	res := &HybridResult{Assignment: a}
	for t := 0; t < cfg.Rounds; t++ {
		st.sampleMoves, st.featureMoves = 0, 0
		passStart := time.Now()
		if cfg.Reference {
			st.refPassSamples(sampleOrder)
		} else {
			st.chunkedPassSamples(sampleOrder)
		}
		sampleDone := time.Now()
		if cfg.Reference {
			st.refPassFeatures(featOrder)
		} else {
			st.chunkedPassFeatures(featOrder)
		}
		featureDone := time.Now()
		if cfg.Reference {
			st.refReplicate(featOrder)
		} else {
			st.replicateTopK()
		}
		replicateDone := time.Now()
		st.checkAccounting(t + 1)
		res.Rounds = append(res.Rounds, RoundStat{
			Round:          t + 1,
			RemoteAccesses: st.roundRemote(),
			Elapsed:        time.Since(start),
			SampleMoves:    st.sampleMoves,
			FeatureMoves:   st.featureMoves,
			CommTotal:      st.commSum,
			SamplePass:     sampleDone.Sub(passStart),
			FeaturePass:    featureDone.Sub(sampleDone),
			ReplicatePass:  replicateDone.Sub(featureDone),
		})
	}
	emitHybridMetrics(cfg.Obs, res)
	return res, nil
}

// emitHybridMetrics exports the per-round history into the registry: move
// counters, pass-time counters (wall nanoseconds — the partitioner runs
// before the simulated clock exists), and per-round remote-access gauges
// with their δ-improvement over the previous round (Table 3 progression).
func emitHybridMetrics(reg *obs.Registry, res *HybridResult) {
	if reg == nil {
		return
	}
	var prev int64
	for i, r := range res.Rounds {
		reg.Counter("partition.moves.samples").Add(0, r.SampleMoves)
		reg.Counter("partition.moves.features").Add(0, r.FeatureMoves)
		reg.Counter("partition.pass.sample_wall_nanos").Add(0, r.SamplePass.Nanoseconds())
		reg.Counter("partition.pass.feature_wall_nanos").Add(0, r.FeaturePass.Nanoseconds())
		reg.Counter("partition.pass.replicate_wall_nanos").Add(0, r.ReplicatePass.Nanoseconds())
		reg.Gauge(fmt.Sprintf("partition.round.%02d.remote_accesses", r.Round)).Set(float64(r.RemoteAccesses))
		if i > 0 {
			reg.Gauge(fmt.Sprintf("partition.round.%02d.improvement", r.Round)).Set(float64(prev - r.RemoteAccesses))
		}
		prev = r.RemoteAccesses
	}
	if n := len(res.Rounds); n > 0 {
		last := res.Rounds[n-1]
		reg.Gauge("partition.rounds").Set(float64(n))
		reg.Gauge("partition.remote_accesses").Set(float64(last.RemoteAccesses))
		reg.Gauge("partition.comm_total").Set(last.CommTotal)
	}
}

// sortFeatByDegree orders feature ids by descending degree, id ascending on
// ties — the canonical embedding visit order of both implementations.
func sortFeatByDegree(order []int32, degree []int32) {
	sort.Slice(order, func(i, j int) bool {
		di, dj := degree[order[i]], degree[order[j]]
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
}

type hybridState struct {
	g      *bigraph.Bigraph
	a      *Assignment
	cfg    HybridConfig
	counts *bigraph.CountTable
	nSamp  []int // samples per partition
	nFeat  []int // primary embeddings per partition
	comm   []float64
	// commSum is Σ comm[i], maintained incrementally by moveSample and
	// moveFeature so the per-vertex average needs no O(N) rescan.
	commSum float64
	// secondaries[i] lists the embeddings currently replicated on
	// partition i, maintained by the 2D pass so clearing last round's
	// choices needs no O(F) sweep over the replica bitsets.
	secondaries [][]int32
	check       *invariant.Checker

	// Per-round move counters, reset by the round loop. Only the reducer
	// (single goroutine) calls moveSample/moveFeature, so plain ints suffice.
	sampleMoves  int64
	featureMoves int64

	// Per-block δc staging the parallel scoring waves fill (see
	// hybrid_parallel.go).
	costBlock  []float64
	worstBlock []float64
}

// weight prices a fetch of an embedding primary on from by a sample on to.
func (st *hybridState) weight(from, to int) float64 {
	if from == to {
		return 0
	}
	if st.cfg.Weights == nil {
		return 1
	}
	return st.cfg.Weights[from][to]
}

// recomputeComm rebuilds the per-partition communication totals δc(Gi):
// the priced remote accesses of embeddings whose primary lives on i.
func (st *hybridState) recomputeComm() {
	st.comm = st.recomputeCommInto(st.comm)
	st.commSum = 0
	for _, c := range st.comm {
		st.commSum += c
	}
}

// recomputeCommInto computes the communication totals from scratch into dst
// (allocated when nil) without touching the maintained state — the
// ground-truth side of the partition-accounting invariant.
func (st *hybridState) recomputeCommInto(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, st.a.N)
	}
	for i := range dst {
		dst[i] = 0
	}
	for x := int32(0); int(x) < st.g.NumFeatures; x++ {
		home := st.a.PrimaryOf[x]
		row := st.counts.Row(x)
		for j, c := range row {
			if j == home || c == 0 {
				continue
			}
			dst[home] += float64(c) * st.weight(home, j)
		}
	}
	return dst
}

// commAvg returns the mean of per-partition communication in O(1) from the
// maintained sum.
func (st *hybridState) commAvg() float64 {
	return st.commSum / float64(len(st.comm))
}

// slack returns the hard balance cap slack, defaulting to 0.1.
func (st *hybridState) slack() float64 {
	if st.cfg.BalanceSlack == 0 {
		return 0.1
	}
	return st.cfg.BalanceSlack
}

// moveSample relocates sample s and incrementally maintains the count table
// and the per-partition communication totals (and their sum).
func (st *hybridState) moveSample(s int, from, to int) {
	for _, x := range st.g.SampleFeatures(s) {
		home := st.a.PrimaryOf[x]
		if home != from {
			w := st.weight(home, from)
			st.comm[home] -= w
			st.commSum -= w
		}
		if home != to {
			w := st.weight(home, to)
			st.comm[home] += w
			st.commSum += w
		}
	}
	st.counts.MoveSample(s, from, to)
	st.nSamp[from]--
	st.nSamp[to]++
	st.a.SampleOf[s] = to
	st.sampleMoves++
}

// moveFeature relocates embedding x's primary, updating communication
// totals for the source and destination partitions.
func (st *hybridState) moveFeature(x int32, from, to int) {
	row := st.counts.Row(x)
	for j, cnt := range row {
		if cnt == 0 {
			continue
		}
		if j != from {
			w := float64(cnt) * st.weight(from, j)
			st.comm[from] -= w
			st.commSum -= w
		}
		if j != to {
			w := float64(cnt) * st.weight(to, j)
			st.comm[to] += w
			st.commSum += w
		}
	}
	st.nFeat[from]--
	st.nFeat[to]++
	st.a.PrimaryOf[x] = to
	st.featureMoves++
}

// roundRemote computes the Table 3 quality metric from the count table in
// O(F·N): an edge (s, x) with s on partition j is remote iff j holds
// neither x's primary nor a secondary, and count(x, j) aggregates exactly
// those edges — the same value as Evaluate's O(E) edge sweep.
func (st *hybridState) roundRemote() int64 {
	var remote int64
	for x := int32(0); int(x) < st.g.NumFeatures; x++ {
		home := st.a.PrimaryOf[x]
		reps := st.a.replicas[x]
		for j, c := range st.counts.Row(x) {
			if c == 0 || j == home || reps.Has(j) {
				continue
			}
			remote += int64(c)
		}
	}
	return remote
}

// checkAccounting enforces the partition-accounting invariant at a round
// boundary: the incrementally maintained per-partition sample/primary loads
// and communication totals must match a from-scratch recomputation — i.e.
// the chunked-delta passes and a sequential replay of the same moves leave
// identical state. No-op when the checker is disabled.
func (st *hybridState) checkAccounting(round int) {
	ck := st.check
	if ck == nil {
		return
	}
	fail := func(detail string, part int, got, want float64) {
		ck.Fail(&invariant.Violation{
			Rule: invariant.PartitionAccounting, Component: "partition.Hybrid",
			Worker: part, Feature: -1,
			Primary: int64(got), Replica: int64(want), Bound: int64(round),
			Detail: detail,
		})
	}
	nSamp := make([]int, st.a.N)
	for _, p := range st.a.SampleOf {
		nSamp[p]++
	}
	nFeat := make([]int, st.a.N)
	for _, p := range st.a.PrimaryOf {
		nFeat[p]++
	}
	for i := 0; i < st.a.N; i++ {
		if nSamp[i] != st.nSamp[i] {
			fail(fmt.Sprintf("round %d: maintained sample load %d, recount %d", round, st.nSamp[i], nSamp[i]),
				i, float64(st.nSamp[i]), float64(nSamp[i]))
		}
		if nFeat[i] != st.nFeat[i] {
			fail(fmt.Sprintf("round %d: maintained primary load %d, recount %d", round, st.nFeat[i], nFeat[i]),
				i, float64(st.nFeat[i]), float64(nFeat[i]))
		}
	}
	if err := st.counts.VerifyRecount(st.a.SampleOf); err != nil {
		fail(fmt.Sprintf("round %d: %v", round, err), -1, 0, 0)
	}
	fresh := st.recomputeCommInto(nil)
	var freshSum float64
	for i, want := range fresh {
		freshSum += want
		if !commClose(st.comm[i], want) {
			fail(fmt.Sprintf("round %d: maintained comm[%d]=%g, recomputed %g", round, i, st.comm[i], want),
				i, st.comm[i], want)
		}
	}
	if !commClose(st.commSum, freshSum) {
		fail(fmt.Sprintf("round %d: maintained commSum=%g, recomputed %g", round, st.commSum, freshSum),
			-1, st.commSum, freshSum)
	}
	ck.Passed(invariant.PartitionAccounting)
}

// commClose compares incrementally maintained float totals against a fresh
// recomputation, tolerating the rounding drift of ~|E| additions.
func commClose(got, want float64) bool {
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	return diff <= 1e-6*scale+1e-3
}
