package partition

import (
	"fmt"
	"sort"
	"time"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/xrand"
)

// HybridConfig parameterises Algorithm 1 of the paper.
type HybridConfig struct {
	// Partitions is N, the number of workers.
	Partitions int
	// Rounds is T, the number of 1D+2D iterations. The paper evaluates 1,
	// 3 and 5 rounds (Table 3); gains flatten after ~5.
	Rounds int
	// Alpha, Beta and Gamma weight the balance terms δξ (sample count),
	// δx (embedding count) and δd (communication balance) of Eq. 4.
	Alpha, Beta, Gamma float64
	// Weights is the heterogeneous bandwidth cost matrix from
	// cluster.Topology.WeightMatrix; nil means uniform (homogeneous) cost,
	// Eq. 3 unweighted.
	Weights [][]float64
	// ReplicaFraction is the share of the embedding vocabulary replicated
	// as secondaries into each partition during the 2D pass; the paper uses
	// the top 1 % (Section 7, "Experimental Setting"). Zero disables the 2D
	// pass entirely, yielding the 1D-only ablation.
	ReplicaFraction float64
	// ReplicaBudget, when positive, overrides ReplicaFraction with an
	// absolute per-partition secondary count (the "GPU memory budget" of
	// Algorithm 1 line 9).
	ReplicaBudget int
	// BalanceSlack is a hard per-partition load cap at (1+slack)·avg for
	// both vertex types. The paper balances through the soft δb score
	// alone; a hard cap makes the implementation robust to any α/β/γ
	// setting (a partition at its cap is simply not a candidate).
	// Default 0.1.
	BalanceSlack float64
	Seed         uint64
}

// DefaultHybridConfig returns the paper's settings for n partitions:
// 5 rounds, top-1% replication, and balance weights that keep both vertex
// types within a few percent of even.
func DefaultHybridConfig(n int) HybridConfig {
	return HybridConfig{
		Partitions:      n,
		Rounds:          5,
		Alpha:           1.0,
		Beta:            1.0,
		Gamma:           0.5,
		ReplicaFraction: 0.01,
		BalanceSlack:    0.1,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c *HybridConfig) Validate() error {
	switch {
	case c.Partitions <= 0 || c.Partitions > MaxPartitions:
		return fmt.Errorf("partition: Partitions %d out of [1,%d]", c.Partitions, MaxPartitions)
	case c.Rounds <= 0:
		return fmt.Errorf("partition: Rounds must be positive, got %d", c.Rounds)
	case c.ReplicaFraction < 0 || c.ReplicaFraction > 1:
		return fmt.Errorf("partition: ReplicaFraction %g out of [0,1]", c.ReplicaFraction)
	case c.ReplicaBudget < 0:
		return fmt.Errorf("partition: ReplicaBudget must be non-negative, got %d", c.ReplicaBudget)
	case c.BalanceSlack < 0:
		return fmt.Errorf("partition: BalanceSlack must be non-negative, got %g", c.BalanceSlack)
	case c.Weights != nil && len(c.Weights) != c.Partitions:
		return fmt.Errorf("partition: weight matrix is %d×?, want %d×%d",
			len(c.Weights), c.Partitions, c.Partitions)
	}
	return nil
}

// RoundStat records partition quality after one full 1D+2D round, the rows
// of the paper's Table 3 ("Ours (1 round)", "Ours (3 rounds)", ...).
type RoundStat struct {
	Round          int
	RemoteAccesses int64
	Elapsed        time.Duration // cumulative wall time through this round
}

// HybridResult is the partitioner output plus per-round history.
type HybridResult struct {
	Assignment *Assignment
	Rounds     []RoundStat
}

// Hybrid runs Algorithm 1: iterative 1D edge-cut vertex assignment guided by
// the score δg = δc + δb, followed by a 2D vertex-cut pass that replicates
// the highest-δp embeddings into each partition up to the memory budget.
//
// Note on Eq. 2's sign: the paper writes δg = δc − δb but describes δb as
// "the marginal cost of adding vertex v to partition Gi ... used to balance
// workloads". A cost must make crowded partitions less attractive under
// argmin, so this implementation adds the balance penalty: δg = δc + δb.
func Hybrid(g *bigraph.Bigraph, cfg HybridConfig) (*HybridResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := cfg.Partitions
	a := Random(g, n, cfg.Seed)
	counts := bigraph.NewCountTable(g, n, a.SampleOf)

	st := &hybridState{
		g:      g,
		a:      a,
		cfg:    cfg,
		counts: counts,
		nSamp:  make([]int, n),
		nFeat:  make([]int, n),
		comm:   make([]float64, n),
	}
	for _, p := range a.SampleOf {
		st.nSamp[p]++
	}
	for _, p := range a.PrimaryOf {
		st.nFeat[p]++
	}
	st.recomputeComm()

	// Deterministic visit orders: samples shuffled once, embeddings by
	// descending degree so the heaviest vertices choose their homes first.
	rng := xrand.New(cfg.Seed ^ 0x1d1d1d1d1d1d1d1d)
	sampleOrder := rng.Perm(g.NumSamples)
	featOrder := make([]int32, g.NumFeatures)
	for i := range featOrder {
		featOrder[i] = int32(i)
	}
	sort.Slice(featOrder, func(i, j int) bool {
		di, dj := g.Degree[featOrder[i]], g.Degree[featOrder[j]]
		if di != dj {
			return di > dj
		}
		return featOrder[i] < featOrder[j]
	})

	res := &HybridResult{Assignment: a}
	for t := 0; t < cfg.Rounds; t++ {
		st.onePassSamples(sampleOrder)
		st.onePassFeatures(featOrder)
		st.replicate(featOrder)
		q := Evaluate(g, a, cfg.Weights)
		res.Rounds = append(res.Rounds, RoundStat{
			Round:          t + 1,
			RemoteAccesses: q.RemoteAccesses,
			Elapsed:        time.Since(start),
		})
	}
	return res, nil
}

type hybridState struct {
	g      *bigraph.Bigraph
	a      *Assignment
	cfg    HybridConfig
	counts *bigraph.CountTable
	nSamp  []int // samples per partition
	nFeat  []int // primary embeddings per partition
	comm   []float64
}

// weight prices a fetch of an embedding primary on from by a sample on to.
func (st *hybridState) weight(from, to int) float64 {
	if from == to {
		return 0
	}
	if st.cfg.Weights == nil {
		return 1
	}
	return st.cfg.Weights[from][to]
}

// recomputeComm rebuilds the per-partition communication totals δc(Gi):
// the priced remote accesses of embeddings whose primary lives on i.
func (st *hybridState) recomputeComm() {
	for i := range st.comm {
		st.comm[i] = 0
	}
	for x := int32(0); int(x) < st.g.NumFeatures; x++ {
		home := st.a.PrimaryOf[x]
		row := st.counts.Row(x)
		for j, c := range row {
			if j == home || c == 0 {
				continue
			}
			st.comm[home] += float64(c) * st.weight(home, j)
		}
	}
}

// commAvg returns the mean of per-partition communication.
func (st *hybridState) commAvg() float64 {
	var s float64
	for _, c := range st.comm {
		s += c
	}
	return s / float64(len(st.comm))
}

// onePassSamples performs the sample-vertex half of the 1D pass: each
// sample moves to the partition minimising δc + δb.
//
// All score terms are normalised to comparable O(1) units: δc by the
// sample's maximum possible cost, the load gap δξ by the average load, and
// the communication gap δd by the average communication. Partitions at the
// hard balance cap are not candidates.
func (st *hybridState) onePassSamples(order []int) {
	n := st.a.N
	avgSamp := float64(st.g.NumSamples) / float64(n)
	capSamp := int(avgSamp*(1+st.slack())) + 1
	costs := make([]float64, n)
	for _, s := range order {
		cur := st.a.SampleOf[s]
		feats := st.g.SampleFeatures(s)

		// δc(v→i): priced fetches of this sample's non-local embeddings,
		// normalised by the worst case (every feature remote at max
		// weight).
		for i := 0; i < n; i++ {
			costs[i] = 0
		}
		var worst float64
		for _, x := range feats {
			home := st.a.PrimaryOf[x]
			var wmax float64
			for i := 0; i < n; i++ {
				w := st.weight(home, i)
				if home != i {
					costs[i] += w
				}
				if w > wmax {
					wmax = w
				}
			}
			worst += wmax
		}
		if worst == 0 {
			worst = 1
		}
		avgComm := st.commAvg()
		normComm := avgComm
		if normComm == 0 {
			normComm = 1
		}
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if i != cur && st.nSamp[i] >= capSamp {
				continue
			}
			load := st.nSamp[i]
			if i != cur {
				load++ // marginal: the sample would join i
			}
			deltaXi := (float64(load) - avgSamp) / avgSamp
			deltaD := (st.comm[i] - avgComm) / normComm
			score := costs[i]/worst + st.cfg.Alpha*deltaXi + st.cfg.Gamma*deltaD
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best >= 0 && best != cur {
			st.moveSample(s, cur, best)
		}
	}
}

// slack returns the hard balance cap slack, defaulting to 0.1.
func (st *hybridState) slack() float64 {
	if st.cfg.BalanceSlack == 0 {
		return 0.1
	}
	return st.cfg.BalanceSlack
}

// moveSample relocates sample s and incrementally maintains the count table
// and the per-partition communication totals.
func (st *hybridState) moveSample(s, from, to int) {
	for _, x := range st.g.SampleFeatures(s) {
		home := st.a.PrimaryOf[x]
		if home != from {
			st.comm[home] -= st.weight(home, from)
		}
		if home != to {
			st.comm[home] += st.weight(home, to)
		}
	}
	st.counts.MoveSample(s, from, to)
	st.nSamp[from]--
	st.nSamp[to]++
	st.a.SampleOf[s] = to
}

// onePassFeatures performs the embedding-vertex half of the 1D pass: each
// embedding's primary moves to the partition minimising δc + δb, with the
// same normalisation and hard cap as the sample pass.
func (st *hybridState) onePassFeatures(order []int32) {
	n := st.a.N
	avgFeat := float64(st.g.NumFeatures) / float64(n)
	capFeat := int(avgFeat*(1+st.slack())) + 1
	// Worst case per unit of degree: the maximum pairwise weight.
	var wmax float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w := st.weight(i, j); w > wmax {
				wmax = w
			}
		}
	}
	for _, x := range order {
		cur := st.a.PrimaryOf[x]
		row := st.counts.Row(x)
		avgComm := st.commAvg()
		normComm := avgComm
		if normComm == 0 {
			normComm = 1
		}
		worst := float64(st.g.Degree[x]) * wmax
		if worst == 0 {
			worst = 1
		}
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if i != cur && st.nFeat[i] >= capFeat {
				continue
			}
			// δc: samples elsewhere fetch x from candidate home i.
			var c float64
			for j, cnt := range row {
				if j == i || cnt == 0 {
					continue
				}
				c += float64(cnt) * st.weight(i, j)
			}
			load := st.nFeat[i]
			if i != cur {
				load++
			}
			deltaX := (float64(load) - avgFeat) / avgFeat
			deltaD := (st.comm[i] - avgComm) / normComm
			score := c/worst + st.cfg.Beta*deltaX + st.cfg.Gamma*deltaD
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best >= 0 && best != cur {
			st.moveFeature(x, cur, best)
		}
	}
}

// moveFeature relocates embedding x's primary, updating communication
// totals for the source and destination partitions.
func (st *hybridState) moveFeature(x int32, from, to int) {
	row := st.counts.Row(x)
	for j, cnt := range row {
		if cnt == 0 {
			continue
		}
		if j != from {
			st.comm[from] -= float64(cnt) * st.weight(from, j)
		}
		if j != to {
			st.comm[to] += float64(cnt) * st.weight(to, j)
		}
	}
	st.nFeat[from]--
	st.nFeat[to]++
	st.a.PrimaryOf[x] = to
}

// replicate performs the 2D vertex-cut pass: for every partition, replicate
// the embeddings with the highest δp(x, Gi) = count(x,i) / Σ count(v,i)
// (Eq. 6) until the memory budget is reached. Because the denominator is
// shared by all candidates of a partition, ranking by count(x, i) suffices.
func (st *hybridState) replicate(order []int32) {
	budget := st.cfg.ReplicaBudget
	if budget == 0 {
		budget = int(st.cfg.ReplicaFraction * float64(st.g.NumFeatures))
	}
	if budget <= 0 {
		return
	}
	type cand struct {
		x int32
		c int32
	}
	for i := 0; i < st.a.N; i++ {
		cands := make([]cand, 0, 1024)
		for _, x := range order {
			if st.a.PrimaryOf[x] == i {
				continue
			}
			if c := st.counts.Count(x, i); c > 0 {
				cands = append(cands, cand{x, c})
			}
		}
		sort.Slice(cands, func(p, q int) bool {
			if cands[p].c != cands[q].c {
				return cands[p].c > cands[q].c
			}
			return cands[p].x < cands[q].x
		})
		// Re-derive this round's replica set from scratch: primaries may
		// have moved since last round, invalidating earlier choices.
		for _, x := range st.prevSecondaries(i) {
			st.a.replicas[x].Clear(i)
		}
		for k := 0; k < len(cands) && k < budget; k++ {
			st.a.AddReplica(cands[k].x, i)
		}
	}
}

// prevSecondaries lists embeddings currently replicated on partition i.
func (st *hybridState) prevSecondaries(i int) []int32 {
	var out []int32
	for x := range st.a.replicas {
		if st.a.replicas[x].Has(i) {
			out = append(out, int32(x))
		}
	}
	return out
}
