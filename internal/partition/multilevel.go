package partition

import (
	"fmt"
	"sort"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/xrand"
)

// MultilevelConfig parameterises the METIS-like clusterer used for the
// paper's Figure 3 locality analysis.
type MultilevelConfig struct {
	Clusters int
	// CoarsenTo stops coarsening once the graph shrinks below
	// CoarsenTo×Clusters vertices (default 30).
	CoarsenTo int
	// RefinePasses is the number of greedy refinement sweeps per level
	// (default 4).
	RefinePasses int
	// BalanceSlack bounds cluster vertex-weight at (1+slack)·W/k
	// (default 0.1).
	BalanceSlack float64
	Seed         uint64
}

func (c *MultilevelConfig) defaults() {
	if c.CoarsenTo == 0 {
		c.CoarsenTo = 30
	}
	if c.RefinePasses == 0 {
		c.RefinePasses = 4
	}
	if c.BalanceSlack == 0 {
		c.BalanceSlack = 0.1
	}
}

// Multilevel clusters a weighted graph into k parts with the classic
// multilevel scheme of METIS (Karypis & Kumar 1998): coarsen by heavy-edge
// matching, partition the coarsest graph greedily, then uncoarsen with
// greedy Kernighan–Lin-style refinement at every level. The paper runs
// METIS over embedding co-occurrence graphs to reveal the dense diagonal
// block structure of Figure 3; this is the stand-in for that external tool.
func Multilevel(g *bigraph.WeightedGraph, cfg MultilevelConfig) ([]int, error) {
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("partition: Multilevel clusters must be positive, got %d", cfg.Clusters)
	}
	cfg.defaults()
	if g.N == 0 {
		return nil, nil
	}
	if g.N <= cfg.Clusters {
		out := make([]int, g.N)
		for i := range out {
			out[i] = i % cfg.Clusters
		}
		return out, nil
	}
	rng := xrand.New(cfg.Seed ^ 0x3e7153e7153e7153)

	// Coarsening phase: build a hierarchy of successively smaller graphs.
	levels := []*WeightedGraphLevel{{Graph: g}}
	for levels[len(levels)-1].Graph.N > cfg.CoarsenTo*cfg.Clusters {
		cur := levels[len(levels)-1]
		next := coarsen(cur.Graph, rng)
		if next == nil || next.Graph.N >= cur.Graph.N*9/10 {
			break // matching stalled; further coarsening won't help
		}
		levels = append(levels, next)
	}

	// Initial partition of the coarsest graph: vertices in descending
	// weight, each to the currently lightest cluster — then refine.
	coarse := levels[len(levels)-1].Graph
	part := greedyInitial(coarse, cfg.Clusters)
	refine(coarse, part, cfg, rng)

	// Uncoarsening: project the partition through each level and refine.
	for li := len(levels) - 1; li > 0; li-- {
		lvl := levels[li]
		finer := levels[li-1].Graph
		finePart := make([]int, finer.N)
		for v := 0; v < finer.N; v++ {
			finePart[v] = part[lvl.CoarseOf[v]]
		}
		part = finePart
		refine(finer, part, cfg, rng)
	}
	return part, nil
}

// WeightedGraphLevel couples a coarsened graph with the mapping from the
// finer level's vertices into it.
type WeightedGraphLevel struct {
	Graph *bigraph.WeightedGraph
	// CoarseOf maps a finer-level vertex to its coarse vertex; nil at the
	// finest level.
	CoarseOf []int32
}

// coarsen contracts a heavy-edge matching of g into a smaller graph.
func coarsen(g *bigraph.WeightedGraph, rng *xrand.RNG) *WeightedGraphLevel {
	match := make([]int32, g.N)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(g.N)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		adj, wt := g.Neighbors(v)
		best, bestW := int32(-1), float32(-1)
		for i, u := range adj {
			if u == v || match[u] >= 0 {
				continue
			}
			if wt[i] > bestW {
				best, bestW = u, wt[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // unmatched: maps to its own coarse vertex
		}
	}

	coarseOf := make([]int32, g.N)
	var nc int32
	for v := int32(0); v < int32(g.N); v++ {
		m := match[v]
		if m < v && m != v {
			coarseOf[v] = coarseOf[m]
			continue
		}
		coarseOf[v] = nc
		nc++
	}
	if int(nc) == g.N {
		return nil
	}

	// Aggregate edges of the contracted graph.
	type edge struct{ a, b int32 }
	agg := make(map[edge]float32)
	vtxWt := make([]float32, nc)
	for v := int32(0); v < int32(g.N); v++ {
		cv := coarseOf[v]
		vtxWt[cv] += g.VtxWt[v]
		adj, wt := g.Neighbors(v)
		for i, u := range adj {
			cu := coarseOf[u]
			if cu == cv {
				continue
			}
			a, b := cv, cu
			if a > b {
				a, b = b, a
			}
			// Each undirected edge is visited from both endpoints; halve.
			agg[edge{a, b}] += wt[i] / 2
		}
	}
	cg := &bigraph.WeightedGraph{N: int(nc), VtxWt: vtxWt}
	deg := make([]int32, nc)
	for e := range agg {
		deg[e.a]++
		deg[e.b]++
	}
	cg.Off = make([]int64, nc+1)
	for v := int32(0); v < nc; v++ {
		cg.Off[v+1] = cg.Off[v] + int64(deg[v])
	}
	cg.Adj = make([]int32, cg.Off[nc])
	cg.Weight = make([]float32, cg.Off[nc])
	cursor := make([]int64, nc)
	copy(cursor, cg.Off[:nc])
	keys := make([]edge, 0, len(agg))
	for e := range agg {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, e := range keys {
		w := agg[e]
		cg.Adj[cursor[e.a]] = e.b
		cg.Weight[cursor[e.a]] = w
		cursor[e.a]++
		cg.Adj[cursor[e.b]] = e.a
		cg.Weight[cursor[e.b]] = w
		cursor[e.b]++
	}
	return &WeightedGraphLevel{Graph: cg, CoarseOf: coarseOf}
}

// greedyInitial seeds the coarsest partition: vertices in descending vertex
// weight, each placed on the lightest cluster so far.
func greedyInitial(g *bigraph.WeightedGraph, k int) []int {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := g.VtxWt[order[i]], g.VtxWt[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	part := make([]int, g.N)
	loads := make([]float64, k)
	for _, v := range order {
		best := 0
		for c := 1; c < k; c++ {
			if loads[c] < loads[best] {
				best = c
			}
		}
		part[v] = best
		loads[best] += float64(g.VtxWt[v])
	}
	return part
}

// refine sweeps vertices greedily, moving each to the cluster maximising
// its internal edge weight, subject to the balance cap.
func refine(g *bigraph.WeightedGraph, part []int, cfg MultilevelConfig, rng *xrand.RNG) {
	k := cfg.Clusters
	var totalW float64
	for _, w := range g.VtxWt {
		totalW += float64(w)
	}
	cap_ := totalW / float64(k) * (1 + cfg.BalanceSlack)
	loads := make([]float64, k)
	for v, p := range part {
		loads[p] += float64(g.VtxWt[v])
	}
	gain := make([]float64, k)
	for pass := 0; pass < cfg.RefinePasses; pass++ {
		moved := 0
		order := rng.Perm(g.N)
		for _, vi := range order {
			v := int32(vi)
			adj, wt := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			for c := 0; c < k; c++ {
				gain[c] = 0
			}
			for i, u := range adj {
				gain[part[u]] += float64(wt[i])
			}
			cur := part[v]
			best := cur
			for c := 0; c < k; c++ {
				if c == cur {
					continue
				}
				if loads[c]+float64(g.VtxWt[v]) > cap_ {
					continue
				}
				if gain[c] > gain[best] {
					best = c
				}
			}
			if best != cur {
				loads[cur] -= float64(g.VtxWt[v])
				loads[best] += float64(g.VtxWt[v])
				part[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
