package partition

import (
	"testing"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/dataset"
)

func TestHybridConfigValidate(t *testing.T) {
	t.Parallel()
	good := DefaultHybridConfig(8)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*HybridConfig){
		func(c *HybridConfig) { c.Partitions = 0 },
		func(c *HybridConfig) { c.Partitions = MaxPartitions + 1 },
		func(c *HybridConfig) { c.Rounds = 0 },
		func(c *HybridConfig) { c.ReplicaFraction = -0.1 },
		func(c *HybridConfig) { c.ReplicaFraction = 1.1 },
		func(c *HybridConfig) { c.ReplicaBudget = -1 },
		func(c *HybridConfig) { c.BalanceSlack = -0.5 },
		func(c *HybridConfig) { c.Weights = [][]float64{{0}} },
	}
	for i, mutate := range bad {
		cfg := DefaultHybridConfig(8)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHybridImprovesOverRandom(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 2e-4)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 3
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	random := Random(g, 8, cfg.Seed)
	hq := Evaluate(g, res.Assignment, nil)
	rq := Evaluate(g, random, nil)
	if hq.RemoteAccesses >= rq.RemoteAccesses/2 {
		t.Errorf("hybrid remote %d not < half of random %d", hq.RemoteAccesses, rq.RemoteAccesses)
	}
}

func TestHybridRespectsBalanceCap(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Criteo, 2e-4)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 3
	cfg.BalanceSlack = 0.1
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, res.Assignment, nil)
	// Cap plus one-off rounding effects: allow a small margin.
	if q.SampleImbalance > 1.15 {
		t.Errorf("sample imbalance %v exceeds cap", q.SampleImbalance)
	}
	if q.FeatureImbalance > 1.15 {
		t.Errorf("feature imbalance %v exceeds cap", q.FeatureImbalance)
	}
}

func TestHybridRoundsImprove(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 2e-4)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 4
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds recorded: %d", len(res.Rounds))
	}
	if res.Rounds[3].RemoteAccesses > res.Rounds[0].RemoteAccesses {
		t.Errorf("round 4 (%d) worse than round 1 (%d)",
			res.Rounds[3].RemoteAccesses, res.Rounds[0].RemoteAccesses)
	}
	for i, rs := range res.Rounds {
		if rs.Round != i+1 {
			t.Errorf("round %d labelled %d", i, rs.Round)
		}
		if i > 0 && rs.Elapsed < res.Rounds[i-1].Elapsed {
			t.Error("elapsed time not cumulative")
		}
	}
}

func TestHybridDeterministic(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 1e-4)
	cfg := DefaultHybridConfig(4)
	cfg.Rounds = 2
	a, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment.SampleOf {
		if a.Assignment.SampleOf[i] != b.Assignment.SampleOf[i] {
			t.Fatal("sample assignment not deterministic")
		}
	}
	for x := range a.Assignment.PrimaryOf {
		if a.Assignment.PrimaryOf[x] != b.Assignment.PrimaryOf[x] {
			t.Fatal("primary assignment not deterministic")
		}
		if a.Assignment.replicas[x] != b.Assignment.replicas[x] {
			t.Fatal("replica sets not deterministic")
		}
	}
}

func TestHybridReplicaBudget(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 1e-4)
	cfg := DefaultHybridConfig(4)
	cfg.Rounds = 2
	cfg.ReplicaBudget = 10
	cfg.ReplicaFraction = 0 // budget must win
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if got := len(res.Assignment.SecondariesOn(p)); got > 10 {
			t.Errorf("partition %d holds %d secondaries, budget 10", p, got)
		}
	}
}

func TestHybridNoReplication(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 1e-4)
	cfg := DefaultHybridConfig(4)
	cfg.Rounds = 2
	cfg.ReplicaFraction = 0
	res, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, res.Assignment, nil)
	if q.ReplicationFactor != 1 {
		t.Errorf("replication factor %v with replication disabled", q.ReplicationFactor)
	}
}

func TestHybridReplicationReducesRemote(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Criteo, 2e-4)
	base := DefaultHybridConfig(8)
	base.Rounds = 2
	base.ReplicaFraction = 0
	noRep, err := Hybrid(g, base)
	if err != nil {
		t.Fatal(err)
	}
	withRep := base
	withRep.ReplicaFraction = 0.01
	rep, err := Hybrid(g, withRep)
	if err != nil {
		t.Fatal(err)
	}
	nq := Evaluate(g, noRep.Assignment, nil)
	rq := Evaluate(g, rep.Assignment, nil)
	if rq.RemoteAccesses >= nq.RemoteAccesses {
		t.Errorf("replication did not reduce remote: %d vs %d",
			rq.RemoteAccesses, nq.RemoteAccesses)
	}
}

func TestHybridWeightedPrefersCheapLinks(t *testing.T) {
	t.Parallel()
	// With a 2-group weight matrix (cheap within a group, expensive
	// across), the weighted cost of the hierarchical partition must beat
	// an unweighted partition evaluated under the same prices. Needs
	// enough data (and rounds) for the super-cluster signal to rise above
	// greedy noise.
	g := testDataset(t, dataset.Criteo, 5e-4)
	const n = 8
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			switch {
			case i == j:
			case i/4 == j/4:
				w[i][j] = 1
			default:
				w[i][j] = 20
			}
		}
	}
	uw := DefaultHybridConfig(n)
	uw.Rounds = 3
	unweighted, err := Hybrid(g, uw)
	if err != nil {
		t.Fatal(err)
	}
	wc := uw
	wc.Weights = w
	weighted, err := Hybrid(g, wc)
	if err != nil {
		t.Fatal(err)
	}
	uq := Evaluate(g, unweighted.Assignment, w)
	wq := Evaluate(g, weighted.Assignment, w)
	if wq.WeightedCost >= uq.WeightedCost {
		t.Errorf("weighted partitioner cost %v not below unweighted %v",
			wq.WeightedCost, uq.WeightedCost)
	}
}

func TestBiCutImprovesOverRandom(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Criteo, 2e-4)
	a, err := BiCut(g, BiCutConfig{Partitions: 8, BalanceSlack: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	random := Random(g, 8, 3)
	bq := Evaluate(g, a, nil)
	rq := Evaluate(g, random, nil)
	if bq.RemoteAccesses >= rq.RemoteAccesses {
		t.Errorf("bicut %d not below random %d", bq.RemoteAccesses, rq.RemoteAccesses)
	}
	if bq.FeatureImbalance > 1.06 {
		t.Errorf("bicut feature imbalance %v exceeds slack", bq.FeatureImbalance)
	}
	if bq.ReplicationFactor != 1 {
		t.Error("bicut should not replicate")
	}
}

func TestBiCutErrors(t *testing.T) {
	t.Parallel()
	g := tinyGraph()
	if _, err := BiCut(g, BiCutConfig{Partitions: 0}); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := BiCut(g, BiCutConfig{Partitions: 2, BalanceSlack: -1}); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestHybridOrderingMatchesPaper(t *testing.T) {
	t.Parallel()
	// The Table 3 ordering: random > bicut > hybrid(1) > hybrid(3+).
	g := testDataset(t, dataset.Criteo, 3e-4)
	random := Evaluate(g, Random(g, 8, 7), nil).RemoteAccesses
	bc, err := BiCut(g, BiCutConfig{Partitions: 8, BalanceSlack: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bicut := Evaluate(g, bc, nil).RemoteAccesses
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 3
	cfg.Seed = 7
	hr, err := Hybrid(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := hr.Rounds[0].RemoteAccesses
	r3 := hr.Rounds[2].RemoteAccesses
	if !(random > bicut && bicut > r1 && r1 >= r3) {
		t.Errorf("ordering broken: random=%d bicut=%d ours1=%d ours3=%d",
			random, bicut, r1, r3)
	}
}

func BenchmarkHybridPartition(b *testing.B) {
	ds, err := dataset.New(dataset.Avazu, 2e-4, 31)
	if err != nil {
		b.Fatal(err)
	}
	g := bigraph.FromDataset(ds)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hybrid(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiCut(b *testing.B) {
	ds, err := dataset.New(dataset.Avazu, 2e-4, 31)
	if err != nil {
		b.Fatal(err)
	}
	g := bigraph.FromDataset(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BiCut(g, BiCutConfig{Partitions: 8, BalanceSlack: 0.05, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
