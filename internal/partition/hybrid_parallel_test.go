package partition

import (
	"runtime"
	"testing"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/dataset"
)

// assignmentsEqual reports whether two hybrid results assign every sample,
// primary and replica set identically.
func assignmentsEqual(t *testing.T, label string, a, b *Assignment) {
	t.Helper()
	for i := range a.SampleOf {
		if a.SampleOf[i] != b.SampleOf[i] {
			t.Fatalf("%s: sample %d assigned %d vs %d", label, i, a.SampleOf[i], b.SampleOf[i])
		}
	}
	for x := range a.PrimaryOf {
		if a.PrimaryOf[x] != b.PrimaryOf[x] {
			t.Fatalf("%s: primary %d assigned %d vs %d", label, x, a.PrimaryOf[x], b.PrimaryOf[x])
		}
		if a.replicas[x] != b.replicas[x] {
			t.Fatalf("%s: replica set of %d differs", label, x)
		}
	}
}

// TestHybridParallelDeterminism is the core guarantee of the chunked-delta
// design: the assignment is a pure function of the graph and the seed, never
// of how many goroutines scored it or how the visit order was blocked.
func TestHybridParallelDeterminism(t *testing.T) {
	g := testDataset(t, dataset.Avazu, 2e-4)
	base := func() HybridConfig {
		cfg := DefaultHybridConfig(8)
		cfg.Rounds = 3
		return cfg
	}
	ref, err := Hybrid(g, base())
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := Hybrid(g, base())
		if err != nil {
			t.Fatal(err)
		}
		assignmentsEqual(t, "GOMAXPROCS", ref.Assignment, got.Assignment)
	}
	runtime.GOMAXPROCS(prev)

	for _, workers := range []int{1, 4, 8} {
		cfg := base()
		cfg.Parallelism = workers
		got, err := Hybrid(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assignmentsEqual(t, "Parallelism", ref.Assignment, got.Assignment)
	}

	for _, block := range []int{64, 1000, 1 << 20} {
		cfg := base()
		cfg.DeltaBlock = block
		got, err := Hybrid(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assignmentsEqual(t, "DeltaBlock", ref.Assignment, got.Assignment)
	}
}

// TestHybridChunkedMatchesReferenceQuality holds the parallel implementation
// to the sequential greedy's partition quality: remote accesses after a full
// 5-round run must stay within 2%, on both uniform and weighted costs.
func TestHybridChunkedMatchesReferenceQuality(t *testing.T) {
	t.Parallel()
	g := testDataset(t, dataset.Avazu, 2e-4)
	weighted := make([][]float64, 8)
	for i := range weighted {
		weighted[i] = make([]float64, 8)
		for j := range weighted[i] {
			if i != j {
				weighted[i][j] = 1
				if i/4 != j/4 {
					weighted[i][j] = 20 // cross-socket
				}
			}
		}
	}
	for _, tc := range []struct {
		name    string
		weights [][]float64
	}{
		{"uniform", nil},
		{"weighted", weighted},
	} {
		cfg := DefaultHybridConfig(8)
		cfg.Weights = tc.weights
		cfg.Reference = true
		ref, err := Hybrid(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Reference = false
		par, err := Hybrid(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refRemote := ref.Rounds[len(ref.Rounds)-1].RemoteAccesses
		parRemote := par.Rounds[len(par.Rounds)-1].RemoteAccesses
		if float64(parRemote) > 1.02*float64(refRemote) {
			t.Errorf("%s: chunked remote %d exceeds reference %d by more than 2%%",
				tc.name, parRemote, refRemote)
		}
	}
}

// BenchmarkHybridReference benchmarks the sequential baseline for comparison
// with BenchmarkHybridPartition (the parallel implementation).
func BenchmarkHybridReference(b *testing.B) {
	ds, err := dataset.New(dataset.Avazu, 2e-4, 31)
	if err != nil {
		b.Fatal(err)
	}
	g := bigraph.FromDataset(ds)
	cfg := DefaultHybridConfig(8)
	cfg.Rounds = 1
	cfg.Reference = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hybrid(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
