package partition

import (
	"hetgmp/internal/bigraph"
	"hetgmp/internal/xrand"
)

// Random assigns samples and embedding primaries to partitions uniformly at
// random with no replication. It is the paper's "Random" baseline in
// Table 3, the initial state of Algorithm 1, and the partitioning model of
// the HugeCTR/HET-MP baselines (hash-partitioned embedding tables).
func Random(g *bigraph.Bigraph, n int, seed uint64) *Assignment {
	a := NewAssignment(n, g.NumSamples, g.NumFeatures)
	rng := xrand.New(seed ^ 0xabcdabcdabcdabcd)
	for s := range a.SampleOf {
		a.SampleOf[s] = rng.Intn(n)
	}
	for x := range a.PrimaryOf {
		a.PrimaryOf[x] = rng.Intn(n)
	}
	return a
}
