package partition

import (
	"fmt"
	"sort"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/xrand"
)

// BiCutConfig parameterises the BiCut baseline.
type BiCutConfig struct {
	Partitions int
	// BalanceSlack bounds per-partition embedding primaries at
	// (1+slack)·F/N, BiCut's load constraint. The paper's comparator keeps
	// partitions near-even; 0.05 matches that behaviour.
	BalanceSlack float64
	Seed         uint64
}

// BiCut implements the bipartite-oriented partitioner of Chen et al.
// ("Bipartite-Oriented Distributed Graph Partitioning for Big Learning",
// JCST 2015), the strong baseline of the paper's Table 3.
//
// BiCut distinguishes the two vertex subsets of a bipartite graph: the
// "favorite" subset (here: samples) is hash-partitioned to spread
// computation, and each vertex of the other subset (embeddings) is then
// greedily placed on the partition holding most of its neighbors, subject
// to a balance cap. Unlike Algorithm 1, BiCut is one-pass and performs no
// replication.
func BiCut(g *bigraph.Bigraph, cfg BiCutConfig) (*Assignment, error) {
	if cfg.Partitions <= 0 || cfg.Partitions > MaxPartitions {
		return nil, fmt.Errorf("partition: BiCut partitions %d out of [1,%d]", cfg.Partitions, MaxPartitions)
	}
	if cfg.BalanceSlack < 0 {
		return nil, fmt.Errorf("partition: BiCut balance slack must be non-negative, got %g", cfg.BalanceSlack)
	}
	n := cfg.Partitions
	a := NewAssignment(n, g.NumSamples, g.NumFeatures)

	// Phase 1: hash-partition the favorite (sample) subset.
	rng := xrand.New(cfg.Seed ^ 0xb1c07b1c07b1c070)
	for s := range a.SampleOf {
		a.SampleOf[s] = rng.Intn(n)
	}
	counts := bigraph.NewCountTable(g, n, a.SampleOf)

	// Phase 2: place each embedding on its argmax-count partition, heaviest
	// first, under the balance cap.
	cap_ := int(float64(g.NumFeatures)/float64(n)*(1+cfg.BalanceSlack)) + 1
	order := make([]int32, g.NumFeatures)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree[order[i]], g.Degree[order[j]]
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	loads := make([]int, n)
	for _, x := range order {
		row := counts.Row(x)
		best, bestCnt := -1, int32(-1)
		for i, c := range row {
			if loads[i] >= cap_ {
				continue
			}
			if c > bestCnt || (c == bestCnt && best >= 0 && loads[i] < loads[best]) {
				best, bestCnt = i, c
			}
		}
		if best < 0 {
			// All partitions at cap (possible only from rounding); fall
			// back to least loaded.
			for i := range loads {
				if best < 0 || loads[i] < loads[best] {
					best = i
				}
			}
		}
		a.PrimaryOf[x] = best
		loads[best]++
	}

	// Phase 3: one greedy pass over the favorite subset — each sample moves
	// to the partition holding most of its embeddings, under the same
	// balance cap. This is BiCut's differentiated treatment of the two
	// vertex subsets; without it the hash placement of phase 1 wastes the
	// locality phase 2 just created.
	sampleCap := int(float64(g.NumSamples)/float64(n)*(1+cfg.BalanceSlack)) + 1
	sampleLoads := make([]int, n)
	for _, p := range a.SampleOf {
		sampleLoads[p]++
	}
	hits := make([]int, n)
	for s := 0; s < g.NumSamples; s++ {
		cur := a.SampleOf[s]
		for i := range hits {
			hits[i] = 0
		}
		for _, x := range g.SampleFeatures(s) {
			hits[a.PrimaryOf[x]]++
		}
		best := cur
		for i := range hits {
			if i == cur || sampleLoads[i] >= sampleCap {
				continue
			}
			if hits[i] > hits[best] {
				best = i
			}
		}
		if best != cur {
			sampleLoads[cur]--
			sampleLoads[best]++
			a.SampleOf[s] = best
		}
	}
	return a, nil
}
