package partition

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The chunked-delta concurrency model (see DESIGN.md §"Parallel hybrid
// partitioning").
//
// The greedy score of Eq. 4 splits into two parts with very different cost
// and freshness profiles:
//
//   - δc, the communication term, is expensive (O(L·N) per sample, O(N²)
//     per embedding in the naive form) but PASS-CONSTANT: sample δc depends
//     only on embedding primaries, which the sample pass never moves, and
//     embedding δc depends only on the count table, which the feature pass
//     never changes. It is therefore safe to precompute δc for a whole
//     block of vertices concurrently against that frozen state.
//   - δb, the balance terms (load gap δξ/δx and communication gap δd), is
//     cheap — O(N) per vertex — but must be fresh, or concurrent movers
//     pile onto the same momentarily-attractive partition.
//
// So each pass runs in two stages: scoring goroutines fill per-candidate δc
// vectors in parallel (writes land in disjoint per-vertex slots), then a
// single reducer walks the visit order in canonical order doing the O(N)
// argmin over δc + δb with fully live balance state and applies the accepted
// moves. The reducer therefore executes the exact sequential greedy — the
// assignment is a pure function of the graph and the seed, bit-identical at
// any GOMAXPROCS, Parallelism or DeltaBlock setting — while the expensive δc
// arithmetic runs on all cores.
//
// The passes stream the visit order in DeltaBlock-sized windows through a
// small scratch matrix so the δc staging area stays cache-resident instead
// of scaling with the vertex set. (A cross-round memoisation of the δc
// vectors with per-vertex dirty tracking was prototyped and rejected: under
// the power-law degree skew a handful of hot-embedding moves per round
// dirties >90% of samples, so the cache never pays for its footprint.)

const (
	minDeltaBlock = 1024
	maxDeltaBlock = 16384
	// scoreChunk is the unit of work one scoring goroutine claims at a
	// time. Chunks tile a block deterministically and proposals land in
	// per-vertex slots, so chunk-to-goroutine scheduling is free to vary.
	scoreChunk = 256
)

// deltaBlock returns the effective block size for a visit order of n
// vertices: the configured size, or ~1/16th of the vertex set clamped to
// [minDeltaBlock, maxDeltaBlock]. Purely a streaming-granularity /
// footprint knob — the assignment does not depend on it.
func (st *hybridState) deltaBlock(n int) int {
	if b := st.cfg.DeltaBlock; b > 0 {
		return b
	}
	b := n / 16
	if b < minDeltaBlock {
		b = minDeltaBlock
	}
	if b > maxDeltaBlock {
		b = maxDeltaBlock
	}
	return b
}

// parWorkers returns the scoring goroutine count.
func (st *hybridState) parWorkers() int {
	if w := st.cfg.Parallelism; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// scoreScratch is one scoring goroutine's private tally buffers.
type scoreScratch struct {
	homeCnt []int32
	touched []int32
}

func (st *hybridState) newScratch() *scoreScratch {
	n := st.a.N
	return &scoreScratch{
		homeCnt: make([]int32, n),
		touched: make([]int32, 0, n),
	}
}

// scoreRange evaluates fn(scratch, k) for every k in [0, total), fanning the
// work across the configured goroutines in scoreChunk-sized slices. fn must
// write only its own vertex's slots.
func (st *hybridState) scoreRange(total int, fn func(sc *scoreScratch, k int)) {
	workers := st.parWorkers()
	if workers > 1 && total >= 2*scoreChunk {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := st.newScratch()
				for {
					lo := int(next.Add(1)-1) * scoreChunk
					if lo >= total {
						return
					}
					hi := min(lo+scoreChunk, total)
					for k := lo; k < hi; k++ {
						fn(sc, k)
					}
				}
			}()
		}
		wg.Wait()
		return
	}
	sc := st.newScratch()
	for k := 0; k < total; k++ {
		fn(sc, k)
	}
}

// blockBuffers sizes the per-block δc matrix (block × N) and worst-case
// normaliser vector.
func (st *hybridState) blockBuffers(block int) {
	n := st.a.N
	if cap(st.costBlock) < block*n {
		st.costBlock = make([]float64, block*n)
	}
	if cap(st.worstBlock) < block {
		st.worstBlock = make([]float64, block)
	}
}

// rowMaxWeights returns max_i w(h, i) per source partition h — the
// per-unit-of-degree worst case used to normalise δc.
func (st *hybridState) rowMaxWeights() []float64 {
	n := st.a.N
	rm := make([]float64, n)
	for h := 0; h < n; h++ {
		for i := 0; i < n; i++ {
			if w := st.weight(h, i); w > rm[h] {
				rm[h] = w
			}
		}
	}
	return rm
}

// chunkedPassSamples is the parallel sample-vertex half of the 1D pass.
func (st *hybridState) chunkedPassSamples(order []int32) {
	n := st.a.N
	avgSamp := float64(st.g.NumSamples) / float64(n)
	capSamp := int(avgSamp*(1+st.slack())) + 1
	rowMax := st.rowMaxWeights()
	block := st.deltaBlock(len(order))
	st.blockBuffers(block)
	for lo := 0; lo < len(order); lo += block {
		hi := min(lo+block, len(order))
		costs := st.costBlock
		worsts := st.worstBlock
		st.scoreRange(hi-lo, func(sc *scoreScratch, k int) {
			worsts[k] = st.sampleCosts(sc, int(order[lo+k]), costs[k*n:(k+1)*n], rowMax)
		})
		for k := lo; k < hi; k++ {
			st.reduceSample(int(order[k]), costs[(k-lo)*n:(k-lo+1)*n], worsts[k-lo], avgSamp, capSamp)
		}
	}
}

// reduceSample is the sequential greedy decision for one sample: the O(N)
// argmin over δc + δb against fully live balance state, applying the move on
// acceptance. Count-table writes are safe here because sample scoring reads
// only embedding primaries, never the table.
func (st *hybridState) reduceSample(s int, cost []float64, worst, avgSamp float64, capSamp int) {
	n := st.a.N
	cur := st.a.SampleOf[s]
	avgComm := st.commAvg()
	normComm := avgComm
	if normComm == 0 {
		normComm = 1
	}
	best, bestScore := -1, 0.0
	for i := 0; i < n; i++ {
		if i != cur && st.nSamp[i] >= capSamp {
			continue
		}
		load := st.nSamp[i]
		if i != cur {
			load++ // marginal: the sample would join i
		}
		deltaXi := (float64(load) - avgSamp) / avgSamp
		deltaD := (st.comm[i] - avgComm) / normComm
		score := cost[i]/worst + st.cfg.Alpha*deltaXi + st.cfg.Gamma*deltaD
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best >= 0 && best != cur {
		st.moveSample(s, cur, best)
	}
}

// sampleCosts fills cost[i] = δc(s→i) for every candidate partition and
// returns the worst-case normaliser. δc is accumulated per current feature
// home — one O(L) tally plus an O(N) combine instead of the O(L·N)
// candidate rescan — and depends only on embedding primaries, which are
// frozen for the whole sample pass.
func (st *hybridState) sampleCosts(sc *scoreScratch, s int, cost []float64, rowMax []float64) float64 {
	n := st.a.N
	feats := st.g.SampleFeatures(s)
	for _, h := range sc.touched {
		sc.homeCnt[h] = 0
	}
	sc.touched = sc.touched[:0]
	for _, x := range feats {
		h := st.a.PrimaryOf[x]
		if sc.homeCnt[h] == 0 {
			sc.touched = append(sc.touched, int32(h))
		}
		sc.homeCnt[h]++
	}
	var worst float64
	if st.cfg.Weights == nil {
		// Uniform pricing: δc(s→i) = |feats| − #feats already homed on i.
		base := float64(len(feats))
		for i := 0; i < n; i++ {
			cost[i] = base - float64(sc.homeCnt[i])
		}
		for _, h := range sc.touched {
			worst += float64(sc.homeCnt[h]) * rowMax[h]
		}
	} else {
		for i := 0; i < n; i++ {
			cost[i] = 0
		}
		for _, h := range sc.touched {
			cnt := float64(sc.homeCnt[h])
			for i := 0; i < n; i++ {
				cost[i] += cnt * st.weight(int(h), i)
			}
			worst += cnt * rowMax[h]
		}
	}
	if worst == 0 {
		worst = 1
	}
	return worst
}

// chunkedPassFeatures is the parallel embedding-vertex half of the 1D pass.
// The count table is constant here (only sample moves change it), so block
// scoring reads rows lock-free.
func (st *hybridState) chunkedPassFeatures(order []int32) {
	n := st.a.N
	avgFeat := float64(st.g.NumFeatures) / float64(n)
	capFeat := int(avgFeat*(1+st.slack())) + 1
	var wmax float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w := st.weight(i, j); w > wmax {
				wmax = w
			}
		}
	}
	block := st.deltaBlock(len(order))
	st.blockBuffers(block)
	for lo := 0; lo < len(order); lo += block {
		hi := min(lo+block, len(order))
		costs := st.costBlock
		st.scoreRange(hi-lo, func(sc *scoreScratch, k int) {
			st.featureCosts(order[lo+k], costs[k*n:(k+1)*n])
		})
		for k := lo; k < hi; k++ {
			st.reduceFeature(order[k], costs[(k-lo)*n:(k-lo+1)*n], wmax, avgFeat, capFeat)
		}
	}
}

// reduceFeature is the sequential greedy decision for one embedding primary,
// mirroring reduceSample.
func (st *hybridState) reduceFeature(x int32, cost []float64, wmax, avgFeat float64, capFeat int) {
	n := st.a.N
	cur := st.a.PrimaryOf[x]
	worst := float64(st.g.Degree[x]) * wmax
	if worst == 0 {
		worst = 1
	}
	avgComm := st.commAvg()
	normComm := avgComm
	if normComm == 0 {
		normComm = 1
	}
	best, bestScore := -1, 0.0
	for i := 0; i < n; i++ {
		if i != cur && st.nFeat[i] >= capFeat {
			continue
		}
		load := st.nFeat[i]
		if i != cur {
			load++
		}
		deltaX := (float64(load) - avgFeat) / avgFeat
		deltaD := (st.comm[i] - avgComm) / normComm
		score := cost[i]/worst + st.cfg.Beta*deltaX + st.cfg.Gamma*deltaD
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best >= 0 && best != cur {
		st.moveFeature(x, cur, best)
	}
}

// featureCosts fills cost[i] = δc(x→i) = Σ_j count(x,j)·w(i,j) for every
// candidate primary, built once per feature from the count-table row's
// non-zero entries — per-partition cost accumulators instead of the
// candidate×row O(N²) rescan.
func (st *hybridState) featureCosts(x int32, cost []float64) {
	n := st.a.N
	row := st.counts.Row(x)
	if st.cfg.Weights == nil {
		var total int32
		for _, c := range row {
			total += c
		}
		for i := 0; i < n; i++ {
			cost[i] = float64(total - row[i])
		}
		return
	}
	for i := 0; i < n; i++ {
		cost[i] = 0
	}
	for j, c := range row {
		if c == 0 {
			continue
		}
		cnt := float64(c)
		for i := 0; i < n; i++ {
			cost[i] += cnt * st.weight(i, j)
		}
	}
}

// candPair is one (embedding, count) replica candidate.
type candPair struct {
	x, c int32
}

// worseCand reports whether a ranks strictly below b in the replica order
// (higher count first, lower id on ties).
func worseCand(a, b candPair) bool {
	if a.c != b.c {
		return a.c < b.c
	}
	return a.x > b.x
}

// replicateTopK is the 2D vertex-cut pass: per partition, select the
// budget embeddings with the highest δp(x, Gi) = count(x,i) / Σ count(v,i)
// (Eq. 6; the shared denominator makes count(x,i) the ranking key) with a
// bounded min-heap fed from the count table — O(F log k) per partition
// instead of collecting and fully sorting every candidate. Selection runs
// in parallel across partitions; replica-bitset swaps are serialised in the
// reducer because partitions share bitset words.
func (st *hybridState) replicateTopK() {
	budget := st.cfg.ReplicaBudget
	if budget == 0 {
		budget = int(st.cfg.ReplicaFraction * float64(st.g.NumFeatures))
	}
	if budget <= 0 {
		return
	}
	n := st.a.N
	selected := make([][]candPair, n)
	workers := min(st.parWorkers(), n)
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					selected[i] = st.topKCandidates(i, budget)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			selected[i] = st.topKCandidates(i, budget)
		}
	}
	for i := 0; i < n; i++ {
		// Re-derive this round's replica set from scratch: primaries may
		// have moved since last round, invalidating earlier choices. The
		// maintained secondary list replaces the O(F) bitset sweep.
		for _, x := range st.secondaries[i] {
			st.a.replicas[x].Clear(i)
		}
		lst := st.secondaries[i][:0]
		for _, c := range selected[i] {
			st.a.AddReplica(c.x, i)
			lst = append(lst, c.x)
		}
		st.secondaries[i] = lst
	}
}

// topKCandidates returns the k best replica candidates for partition i as an
// unordered min-heap. The heap root is the worst retained candidate; a new
// candidate replaces it only when strictly better, so the final set is
// exactly the top k under the (count desc, id asc) total order no matter
// the scan mechanics.
func (st *hybridState) topKCandidates(i, k int) []candPair {
	h := make([]candPair, 0, min(k, st.g.NumFeatures))
	for x := int32(0); int(x) < st.g.NumFeatures; x++ {
		if st.a.PrimaryOf[x] == i {
			continue
		}
		c := st.counts.Count(x, i)
		if c <= 0 {
			continue
		}
		cand := candPair{x: x, c: c}
		if len(h) < k {
			h = append(h, cand)
			// Sift up.
			for j := len(h) - 1; j > 0; {
				p := (j - 1) / 2
				if !worseCand(h[j], h[p]) {
					break
				}
				h[j], h[p] = h[p], h[j]
				j = p
			}
			continue
		}
		if !worseCand(h[0], cand) {
			continue
		}
		h[0] = cand
		// Sift down.
		for j := 0; ; {
			l, r := 2*j+1, 2*j+2
			m := j
			if l < len(h) && worseCand(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worseCand(h[r], h[m]) {
				m = r
			}
			if m == j {
				break
			}
			h[j], h[m] = h[m], h[j]
			j = m
		}
	}
	return h
}
