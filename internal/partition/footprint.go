package partition

import (
	"strconv"

	"hetgmp/internal/obs/memacct"
)

// intBytes is the platform size of int ([]int slices dominate the
// assignment's storage).
const intBytes = strconv.IntSize / 8

// Footprint reports the assignment's measured memory layout (see
// internal/obs/memacct): the sample→partition and feature→primary maps
// plus the per-feature replica bitsets. memacct.Footprint is aliased as
// obs.Footprint; partition depends only on the std-only memacct package.
func (a *Assignment) Footprint() memacct.Footprint {
	return memacct.Node("partition",
		memacct.Leaf("sample_of", int64(len(a.SampleOf))*intBytes),
		memacct.Leaf("primary_of", int64(len(a.PrimaryOf))*intBytes),
		memacct.Leaf("replica_bitsets", int64(len(a.replicas))*8),
	)
}

// ReplicatedFeatures returns the features the partitioner placed at least
// one secondary replica for — its prediction of the hot set (the bigraph's
// Zipf head). Capacity reports compare this predicted hot set against the
// hot set the frequency sketches actually observe at runtime.
func (a *Assignment) ReplicatedFeatures() []int32 {
	var out []int32
	for x, bits := range a.replicas {
		if bits != 0 {
			out = append(out, int32(x))
		}
	}
	return out
}
