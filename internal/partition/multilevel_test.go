package partition

import (
	"sort"
	"testing"

	"hetgmp/internal/bigraph"
	"hetgmp/internal/dataset"
	"hetgmp/internal/xrand"
)

// plantedGraph builds a weighted graph of k dense clusters of size m with
// strong internal edges and weak cross edges.
func plantedGraph(k, m int, seed uint64) *bigraph.WeightedGraph {
	n := k * m
	rng := xrand.New(seed)
	type edge struct{ a, b int32 }
	weights := map[edge]float32{}
	add := func(a, b int32, w float32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		weights[edge{a, b}] += w
	}
	// Dense intra-cluster connections.
	for c := 0; c < k; c++ {
		base := int32(c * m)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				add(base+int32(i), base+int32(j), 10)
			}
		}
	}
	// Sparse random cross edges.
	for e := 0; e < n; e++ {
		add(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
	}
	g := &bigraph.WeightedGraph{N: n, VtxWt: make([]float32, n)}
	for i := range g.VtxWt {
		g.VtxWt[i] = 1
	}
	deg := make([]int32, n)
	for e := range weights {
		deg[e.a]++
		deg[e.b]++
	}
	g.Off = make([]int64, n+1)
	for v := 0; v < n; v++ {
		g.Off[v+1] = g.Off[v] + int64(deg[v])
	}
	g.Adj = make([]int32, g.Off[n])
	g.Weight = make([]float32, g.Off[n])
	cursor := make([]int64, n)
	copy(cursor, g.Off[:n])
	// Sort edges: Go map iteration order is randomised, and adjacency
	// ordering influences matching tie-breaks — the helper must be
	// deterministic for the tests built on it.
	keys := make([]edge, 0, len(weights))
	for e := range weights {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, e := range keys {
		w := weights[e]
		g.Adj[cursor[e.a]] = e.b
		g.Weight[cursor[e.a]] = w
		cursor[e.a]++
		g.Adj[cursor[e.b]] = e.a
		g.Weight[cursor[e.b]] = w
		cursor[e.b]++
	}
	return g
}

func TestMultilevelRecoversPlantedClusters(t *testing.T) {
	t.Parallel()
	const k, m = 4, 50
	g := plantedGraph(k, m, 3)
	part, err := Multilevel(g, MultilevelConfig{Clusters: k, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != k*m {
		t.Fatalf("partition length %d", len(part))
	}
	intra := g.IntraClusterFraction(part)
	if intra < 0.85 {
		t.Errorf("intra-cluster fraction %v, want > 0.85 on planted clusters", intra)
	}
	// Each planted cluster should be (mostly) assigned to one label.
	for c := 0; c < k; c++ {
		counts := map[int]int{}
		for i := 0; i < m; i++ {
			counts[part[c*m+i]]++
		}
		var best int
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		if best < m*7/10 {
			t.Errorf("planted cluster %d split: %v", c, counts)
		}
	}
}

func TestMultilevelBeatsRandomOnRealDataset(t *testing.T) {
	t.Parallel()
	ds, err := dataset.New(dataset.Avazu, 1e-4, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := bigraph.FromDataset(ds)
	co := g.Cooccurrence(bigraph.CooccurrenceOptions{MaxSamples: 3000, MaxPairsPerSample: 60, Seed: 7})
	part, err := Multilevel(co, MultilevelConfig{Clusters: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	intra := co.IntraClusterFraction(part)
	rng := xrand.New(99)
	random := make([]int, co.N)
	for i := range random {
		random[i] = rng.Intn(8)
	}
	base := co.IntraClusterFraction(random)
	if intra < 3*base {
		t.Errorf("clustered intra %v not ≫ random %v", intra, base)
	}
}

func TestMultilevelBalance(t *testing.T) {
	t.Parallel()
	const k, m = 4, 50
	g := plantedGraph(k, m, 5)
	part, err := Multilevel(g, MultilevelConfig{Clusters: k, Seed: 5, BalanceSlack: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, k)
	for v, p := range part {
		loads[p] += float64(g.VtxWt[v])
	}
	var total float64
	for _, l := range loads {
		total += l
	}
	cap_ := total / float64(k) * 1.15
	for c, l := range loads {
		if l > cap_ {
			t.Errorf("cluster %d load %v exceeds cap %v", c, l, cap_)
		}
	}
}

func TestMultilevelSmallGraphs(t *testing.T) {
	t.Parallel()
	// Graph smaller than cluster count: everyone gets their own label.
	g := plantedGraph(1, 3, 1) // 3 vertices
	part, err := Multilevel(g, MultilevelConfig{Clusters: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 3 {
		t.Fatalf("partition length %d", len(part))
	}
	// Empty graph.
	empty := &bigraph.WeightedGraph{}
	part, err = Multilevel(empty, MultilevelConfig{Clusters: 4, Seed: 1})
	if err != nil || part != nil {
		t.Errorf("empty graph: %v, %v", part, err)
	}
}

func TestMultilevelErrors(t *testing.T) {
	t.Parallel()
	g := plantedGraph(2, 10, 1)
	if _, err := Multilevel(g, MultilevelConfig{Clusters: 0}); err == nil {
		t.Error("zero clusters accepted")
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	t.Parallel()
	g := plantedGraph(3, 30, 9)
	a, err := Multilevel(g, MultilevelConfig{Clusters: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Multilevel(g, MultilevelConfig{Clusters: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("multilevel not deterministic")
		}
	}
}

func BenchmarkMultilevel(b *testing.B) {
	g := plantedGraph(8, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multilevel(g, MultilevelConfig{Clusters: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
