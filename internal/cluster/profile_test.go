package cluster

import "testing"

func TestProfileTopology(t *testing.T) {
	topo := ClusterB(2)
	p := ProfileTopology(topo)
	n := topo.NumWorkers()
	if len(p.BandwidthBps) != n {
		t.Fatalf("profile has %d rows", len(p.BandwidthBps))
	}
	// Measured speeds preserve the link hierarchy.
	nv := p.BandwidthBps[0][1]  // NVLink
	qpi := p.BandwidthBps[0][4] // QPI
	eth := p.BandwidthBps[0][8] // 10GbE
	if !(nv > qpi && qpi > eth) {
		t.Errorf("measured hierarchy broken: %g, %g, %g", nv, qpi, eth)
	}
	// Probe-based measurement sits below nominal (latency included).
	if nv >= NVLink.Bandwidth() {
		t.Errorf("measured NVLink %g not below nominal %g", nv, NVLink.Bandwidth())
	}
}

func TestProfileWeightMatrix(t *testing.T) {
	topo := ClusterB(2)
	w, err := ProfileTopology(topo).WeightMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// The fastest pair costs 1, slower pairs more, diagonal 0.
	if w[0][1] != 1 {
		t.Errorf("fastest pair weight %v", w[0][1])
	}
	if !(w[0][8] > w[0][4] && w[0][4] > w[0][1]) {
		t.Errorf("weight hierarchy broken: %v, %v, %v", w[0][1], w[0][4], w[0][8])
	}
	for i := range w {
		if w[i][i] != 0 {
			t.Errorf("diagonal w[%d][%d] = %v", i, i, w[i][i])
		}
	}
	// Profile-derived and topology-derived matrices agree on ordering.
	direct := topo.WeightMatrix(WeightHierarchical)
	if (w[0][8] > w[0][4]) != (direct[0][8] > direct[0][4]) {
		t.Error("profile and direct weights disagree on ordering")
	}
}

func TestProfileWeightMatrixErrors(t *testing.T) {
	if _, err := (&Profile{}).WeightMatrix(); err == nil {
		t.Error("empty profile accepted")
	}
	bad := &Profile{BandwidthBps: [][]float64{{0, 0}, {0, 0}}}
	if _, err := bad.WeightMatrix(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	ragged := &Profile{BandwidthBps: [][]float64{{0, 1}, {1}}}
	if _, err := ragged.WeightMatrix(); err == nil {
		t.Error("ragged profile accepted")
	}
}
