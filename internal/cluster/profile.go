package cluster

import "fmt"

// Profile holds measured pairwise communication speeds, the input the
// paper's partitioner actually consumes: "we profile the communication
// speeds for all GPU-GPU pairs and formulate them into a weight matrix"
// (Section 5.2). Profiling decouples the partitioner from a-priori
// topology knowledge — on real hardware the probe would be a bandwidth
// benchmark; here it exercises the simulated link model the same way.
type Profile struct {
	// BandwidthBps[i][j] is the measured worker-to-worker bandwidth in
	// bytes/second (diagonal entries are device-local and unused).
	BandwidthBps [][]float64
}

// ProbeBytes is the payload size used to measure each pair. Large enough
// that the measurement is bandwidth- rather than latency-dominated, small
// enough to keep profiling instant.
const ProbeBytes = 16 << 20

// ProfileTopology measures every worker pair of a topology by timing a
// probe transfer through the link model.
func ProfileTopology(t *Topology) *Profile {
	n := t.NumWorkers()
	p := &Profile{BandwidthBps: make([][]float64, n)}
	for i := 0; i < n; i++ {
		p.BandwidthBps[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			seconds := t.Latency(i, j) + ProbeBytes/t.Bandwidth(i, j)
			p.BandwidthBps[i][j] = ProbeBytes / seconds
		}
	}
	return p
}

// WeightMatrix converts measured speeds into the partitioner's cost
// matrix: each pair priced by the reciprocal of its measured bandwidth,
// normalised so the fastest pair costs 1.
func (p *Profile) WeightMatrix() ([][]float64, error) {
	n := len(p.BandwidthBps)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty profile")
	}
	var best float64
	for i := range p.BandwidthBps {
		if len(p.BandwidthBps[i]) != n {
			return nil, fmt.Errorf("cluster: profile row %d has %d entries, want %d",
				i, len(p.BandwidthBps[i]), n)
		}
		for j, b := range p.BandwidthBps[i] {
			if i == j {
				continue
			}
			if b <= 0 {
				return nil, fmt.Errorf("cluster: non-positive measured bandwidth for pair (%d,%d)", i, j)
			}
			if b > best {
				best = b
			}
		}
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i == j {
				continue
			}
			w[i][j] = best / p.BandwidthBps[i][j]
		}
	}
	return w, nil
}
