// Package cluster models the GPU cluster topologies of the paper's
// evaluation (Section 7, "Experimental Setting"): nodes holding 8 GPUs split
// across two CPU sockets, with NVLink or PCIe inside a socket, QPI between
// sockets, and 1 or 10 Gb Ethernet between nodes.
//
// The reproduction has no physical GPUs; instead every transfer the training
// system performs is charged simulated time according to this model. The
// absolute constants are calibrated to the hardware generation the paper
// used (RTX TITAN / V100 era); what the experiments depend on is the
// *hierarchy* — NVLink ≫ PCIe ≫ QPI ≫ 10 GbE ≫ 1 GbE — which drives the
// paper's Figure 1 communication fractions, the Figure 9 hierarchical
// partitioning gains, and the Figure 10 scalability cliffs.
package cluster

import "fmt"

// LinkType classifies the interconnect between a pair of workers.
type LinkType int

const (
	// Loopback is a worker talking to itself (device-memory bandwidth).
	Loopback LinkType = iota
	// NVLink is the intra-socket GPU fabric on cluster B.
	NVLink
	// PCIe is PCIe 3.0 x16, the intra-socket fabric on cluster A and the
	// CPU↔GPU host link everywhere.
	PCIe
	// QPI is the cross-socket path within one node.
	QPI
	// Ethernet10G is the inter-node network on cluster B.
	Ethernet10G
	// Ethernet1G is the inter-node network on cluster A.
	Ethernet1G
)

// String returns the conventional name of the link type.
func (l LinkType) String() string {
	switch l {
	case Loopback:
		return "loopback"
	case NVLink:
		return "NVLink"
	case PCIe:
		return "PCIe"
	case QPI:
		return "QPI"
	case Ethernet10G:
		return "10GbE"
	case Ethernet1G:
		return "1GbE"
	}
	return fmt.Sprintf("LinkType(%d)", int(l))
}

// Bandwidth returns the effective point-to-point bandwidth in bytes/second.
// Values are effective (not peak) numbers for the paper's hardware era.
func (l LinkType) Bandwidth() float64 {
	switch l {
	case Loopback:
		return 600e9 // HBM-class device memory
	case NVLink:
		return 48e9 // NVLink2 effective p2p
	case PCIe:
		return 12e9 // PCIe 3.0 x16 effective
	case QPI:
		return 8e9 // cross-socket UPI/QPI effective
	case Ethernet10G:
		return 1.1e9 // ~88% of 10 Gb/s line rate
	case Ethernet1G:
		return 0.11e9
	}
	return 1e9
}

// Latency returns the per-message latency in seconds.
func (l LinkType) Latency() float64 {
	switch l {
	case Loopback:
		return 0.5e-6
	case NVLink:
		return 2e-6
	case PCIe:
		return 3e-6
	case QPI:
		return 4e-6
	case Ethernet10G:
		return 30e-6
	case Ethernet1G:
		return 60e-6
	}
	return 50e-6
}

// Topology describes a cluster: Nodes machines, each with GPUsPerNode
// workers spread evenly over SocketsPerNode CPU sockets.
type Topology struct {
	Name           string
	Nodes          int
	GPUsPerNode    int
	SocketsPerNode int

	IntraSocket LinkType // GPU↔GPU within one socket
	CrossSocket LinkType // GPU↔GPU across sockets in one node
	Network     LinkType // GPU↔GPU across nodes

	// GPUFlops is the peak fp32 throughput per worker.
	GPUFlops float64
	// GPUEfficiency is the fraction of peak the small, memory-bound dense
	// layers of CTR models actually achieve (kernel-launch overhead, thin
	// GEMMs). Typical observed values are a few percent; 0 defaults to
	// 0.01.
	GPUEfficiency float64
	// HostFlops models the CPU-side parameter-server compute rate for the
	// TF-PS and Parallax baselines.
	HostFlops float64
}

// EffectiveFlops returns the usable per-worker compute rate.
func (t *Topology) EffectiveFlops() float64 {
	eff := t.GPUEfficiency
	if eff <= 0 {
		eff = 0.01
	}
	return t.GPUFlops * eff
}

// NumWorkers returns the total worker (GPU) count.
func (t *Topology) NumWorkers() int { return t.Nodes * t.GPUsPerNode }

// Validate reports configuration errors.
func (t *Topology) Validate() error {
	switch {
	case t.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, got %d", t.Nodes)
	case t.GPUsPerNode <= 0:
		return fmt.Errorf("cluster: GPUsPerNode must be positive, got %d", t.GPUsPerNode)
	case t.SocketsPerNode <= 0:
		return fmt.Errorf("cluster: SocketsPerNode must be positive, got %d", t.SocketsPerNode)
	case t.GPUFlops <= 0:
		return fmt.Errorf("cluster: GPUFlops must be positive, got %g", t.GPUFlops)
	}
	return nil
}

// NodeOf returns the machine index hosting worker w.
func (t *Topology) NodeOf(w int) int { return w / t.GPUsPerNode }

// SocketOf returns the global socket index hosting worker w.
func (t *Topology) SocketOf(w int) int {
	perSocket := (t.GPUsPerNode + t.SocketsPerNode - 1) / t.SocketsPerNode
	local := w % t.GPUsPerNode
	return t.NodeOf(w)*t.SocketsPerNode + local/perSocket
}

// Link returns the interconnect between workers i and j.
func (t *Topology) Link(i, j int) LinkType {
	switch {
	case i == j:
		return Loopback
	case t.NodeOf(i) != t.NodeOf(j):
		return t.Network
	case t.SocketOf(i) != t.SocketOf(j):
		return t.CrossSocket
	default:
		return t.IntraSocket
	}
}

// Bandwidth returns bytes/second between workers i and j.
func (t *Topology) Bandwidth(i, j int) float64 { return t.Link(i, j).Bandwidth() }

// Latency returns seconds of per-message latency between workers i and j.
func (t *Topology) Latency(i, j int) float64 { return t.Link(i, j).Latency() }

// HostLink returns the link between worker w and the CPU host that serves
// parameters in the PS baselines: PCIe when the PS shard is on the same
// machine, the network otherwise.
func (t *Topology) HostLink(w, hostNode int) LinkType {
	if t.NodeOf(w) == hostNode {
		return PCIe
	}
	return t.Network
}

// MinBandwidth returns the lowest pairwise bandwidth in the cluster, the
// bottleneck term of the ring-AllReduce cost model.
func (t *Topology) MinBandwidth() float64 {
	n := t.NumWorkers()
	min := Loopback.Bandwidth()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if b := t.Bandwidth(i, j); b < min {
				min = b
			}
		}
	}
	return min
}

// WeightPolicy selects how the partitioner prices cross-partition edges
// (Section 5.2, weighted edge-cuts; Section 7.2, Figure 9a).
type WeightPolicy int

const (
	// WeightUniform treats every pair identically (the "non-hierarchical"
	// policy of Figure 9a).
	WeightUniform WeightPolicy = iota
	// WeightHierarchical profiles the topology and prices each pair by the
	// reciprocal of its bandwidth, normalised so the fastest inter-worker
	// link costs 1 (the paper sets inter-machine ≈ 10× intra-machine).
	WeightHierarchical
)

// WeightMatrix returns the N×N cost matrix the partitioner multiplies into
// count(x, i) when evaluating edge cuts. The diagonal is zero: local access
// is free.
func (t *Topology) WeightMatrix(policy WeightPolicy) [][]float64 {
	n := t.NumWorkers()
	w := make([][]float64, n)
	// Normalise against the fastest non-loopback link present.
	var best float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if b := t.Bandwidth(i, j); b > best {
				best = b
			}
		}
	}
	if best == 0 {
		best = 1
	}
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i == j {
				continue
			}
			switch policy {
			case WeightUniform:
				w[i][j] = 1
			case WeightHierarchical:
				w[i][j] = best / t.Bandwidth(i, j)
			}
		}
	}
	return w
}
