package cluster

import "fmt"

// FLOPs constants for the paper's hardware.
const (
	rtxTitanFlops = 16.3e12 // RTX TITAN fp32
	v100Flops     = 15.7e12 // Tesla V100 fp32
	xeonFlops     = 1.0e12  // dual-socket host CPU, all cores
)

// FourGPUNVLink is the "4-GPU NVLink" configuration of Figure 1: four GPUs
// on one socket joined by NVLink.
func FourGPUNVLink() *Topology {
	return &Topology{
		Name:           "4-GPU NVLink",
		Nodes:          1,
		GPUsPerNode:    4,
		SocketsPerNode: 1,
		IntraSocket:    NVLink,
		CrossSocket:    NVLink,
		Network:        Ethernet10G,
		GPUFlops:       v100Flops,
		GPUEfficiency:  0.06,
		HostFlops:      xeonFlops,
	}
}

// FourGPUPCIe is the "4-GPU PCIe" configuration of Figure 1.
func FourGPUPCIe() *Topology {
	return &Topology{
		Name:           "4-GPU PCIe",
		Nodes:          1,
		GPUsPerNode:    4,
		SocketsPerNode: 1,
		IntraSocket:    PCIe,
		CrossSocket:    PCIe,
		Network:        Ethernet1G,
		GPUFlops:       rtxTitanFlops,
		GPUEfficiency:  0.06,
		HostFlops:      xeonFlops,
	}
}

// EightGPUQPI is the "8-GPU QPI" configuration of Figure 1: eight GPUs over
// two sockets, PCIe within a socket and QPI across.
func EightGPUQPI() *Topology {
	return &Topology{
		Name:           "8-GPU QPI",
		Nodes:          1,
		GPUsPerNode:    8,
		SocketsPerNode: 2,
		IntraSocket:    PCIe,
		CrossSocket:    QPI,
		Network:        Ethernet1G,
		GPUFlops:       rtxTitanFlops,
		GPUEfficiency:  0.06,
		HostFlops:      xeonFlops,
	}
}

// ClusterA builds the paper's cluster A: nodes of 8 RTX TITANs on PCIe 3.0,
// two sockets per node, 1 Gb Ethernet between nodes. Most end-to-end
// experiments (Figure 7, Figure 8, Table 2) run on one node of cluster A.
func ClusterA(nodes int) *Topology {
	return &Topology{
		Name:           fmt.Sprintf("cluster-A-%dnode", nodes),
		Nodes:          nodes,
		GPUsPerNode:    8,
		SocketsPerNode: 2,
		IntraSocket:    PCIe,
		CrossSocket:    QPI,
		Network:        Ethernet1G,
		GPUFlops:       rtxTitanFlops,
		GPUEfficiency:  0.06,
		HostFlops:      xeonFlops,
	}
}

// ClusterB builds the paper's cluster B: nodes of 8 V100s with NVLink
// within a socket, QPI across sockets, 10 Gb Ethernet between nodes. The
// scalability study (Figure 10) and the hierarchical-partitioning study
// (Figure 9) run here.
func ClusterB(nodes int) *Topology {
	return &Topology{
		Name:           fmt.Sprintf("cluster-B-%dnode", nodes),
		Nodes:          nodes,
		GPUsPerNode:    8,
		SocketsPerNode: 2,
		IntraSocket:    NVLink,
		CrossSocket:    QPI,
		Network:        Ethernet10G,
		GPUFlops:       v100Flops,
		GPUEfficiency:  0.06,
		HostFlops:      xeonFlops,
	}
}

// ScaleOut returns a cluster-B topology holding exactly gpus workers, the
// progression of the paper's Figure 10: 1–4 GPUs share a socket (NVLink),
// 5–8 span two sockets (QPI), and beyond 8 additional machines join over
// 10 Gb Ethernet. The interconnect therefore *degrades* as the cluster
// grows, which is what makes HugeCTR-style random partitioning lose
// throughput past one socket.
func ScaleOut(gpus int) (*Topology, error) {
	if gpus <= 0 {
		return nil, fmt.Errorf("cluster: ScaleOut needs at least 1 GPU, got %d", gpus)
	}
	t := &Topology{
		Name:          fmt.Sprintf("cluster-B-%dgpu", gpus),
		IntraSocket:   NVLink,
		CrossSocket:   QPI,
		Network:       Ethernet10G,
		GPUFlops:      v100Flops,
		GPUEfficiency: 0.06,
		HostFlops:     xeonFlops,
	}
	switch {
	case gpus <= 4:
		t.Nodes, t.GPUsPerNode, t.SocketsPerNode = 1, gpus, 1
	case gpus <= 8:
		t.Nodes, t.GPUsPerNode, t.SocketsPerNode = 1, gpus, 2
	default:
		if gpus%8 != 0 {
			return nil, fmt.Errorf("cluster: ScaleOut beyond 8 GPUs requires a multiple of 8, got %d", gpus)
		}
		t.Nodes, t.GPUsPerNode, t.SocketsPerNode = gpus/8, 8, 2
	}
	return t, nil
}
