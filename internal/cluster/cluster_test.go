package cluster

import (
	"testing"
)

func TestLinkTypeStrings(t *testing.T) {
	cases := map[LinkType]string{
		Loopback: "loopback", NVLink: "NVLink", PCIe: "PCIe",
		QPI: "QPI", Ethernet10G: "10GbE", Ethernet1G: "1GbE",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
	if got := LinkType(99).String(); got == "" {
		t.Error("unknown link type renders empty")
	}
}

func TestBandwidthHierarchy(t *testing.T) {
	// The paper's premise: NVLink ≫ PCIe > QPI ≫ 10GbE ≫ 1GbE.
	order := []LinkType{Loopback, NVLink, PCIe, QPI, Ethernet10G, Ethernet1G}
	for i := 1; i < len(order); i++ {
		if order[i-1].Bandwidth() <= order[i].Bandwidth() {
			t.Errorf("bandwidth(%v)=%g not greater than bandwidth(%v)=%g",
				order[i-1], order[i-1].Bandwidth(), order[i], order[i].Bandwidth())
		}
	}
}

func TestLatencyHierarchy(t *testing.T) {
	if NVLink.Latency() >= Ethernet1G.Latency() {
		t.Error("NVLink latency should be far below Ethernet")
	}
	for _, l := range []LinkType{Loopback, NVLink, PCIe, QPI, Ethernet10G, Ethernet1G} {
		if l.Latency() <= 0 {
			t.Errorf("latency(%v) = %g", l, l.Latency())
		}
	}
}

func TestTopologyLinkClassification(t *testing.T) {
	topo := ClusterB(2) // 16 workers, 2 sockets × 4 GPUs per node
	cases := []struct {
		i, j int
		want LinkType
	}{
		{0, 0, Loopback},
		{0, 1, NVLink},       // same socket
		{0, 3, NVLink},       // same socket
		{0, 4, QPI},          // across sockets, same node
		{3, 7, QPI},          // across sockets
		{0, 8, Ethernet10G},  // across nodes
		{7, 15, Ethernet10G}, // across nodes
	}
	for _, c := range cases {
		if got := topo.Link(c.i, c.j); got != c.want {
			t.Errorf("Link(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
		// Symmetry.
		if got := topo.Link(c.j, c.i); got != c.want {
			t.Errorf("Link(%d,%d) = %v, want %v (symmetry)", c.j, c.i, got, c.want)
		}
	}
}

func TestNodeAndSocketOf(t *testing.T) {
	topo := ClusterB(3)
	if topo.NumWorkers() != 24 {
		t.Fatalf("NumWorkers = %d, want 24", topo.NumWorkers())
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(7) != 0 || topo.NodeOf(8) != 1 || topo.NodeOf(23) != 2 {
		t.Error("NodeOf wrong")
	}
	if topo.SocketOf(0) == topo.SocketOf(4) {
		t.Error("workers 0 and 4 should be on different sockets")
	}
	if topo.SocketOf(0) != topo.SocketOf(3) {
		t.Error("workers 0 and 3 should share a socket")
	}
	if topo.SocketOf(0) == topo.SocketOf(8) {
		t.Error("different nodes must have different socket indices")
	}
}

func TestValidate(t *testing.T) {
	good := ClusterA(1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	bad := []*Topology{
		{Nodes: 0, GPUsPerNode: 8, SocketsPerNode: 2, GPUFlops: 1},
		{Nodes: 1, GPUsPerNode: 0, SocketsPerNode: 2, GPUFlops: 1},
		{Nodes: 1, GPUsPerNode: 8, SocketsPerNode: 0, GPUFlops: 1},
		{Nodes: 1, GPUsPerNode: 8, SocketsPerNode: 2, GPUFlops: 0},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("bad topology %d accepted", i)
		}
	}
}

func TestHostLink(t *testing.T) {
	topo := ClusterA(2)
	if got := topo.HostLink(0, 0); got != PCIe {
		t.Errorf("same-node host link %v, want PCIe", got)
	}
	if got := topo.HostLink(0, 1); got != Ethernet1G {
		t.Errorf("cross-node host link %v, want Ethernet1G", got)
	}
}

func TestMinBandwidth(t *testing.T) {
	single := FourGPUNVLink()
	if got := single.MinBandwidth(); got != NVLink.Bandwidth() {
		t.Errorf("single-socket min bandwidth %g, want NVLink", got)
	}
	multi := ClusterB(2)
	if got := multi.MinBandwidth(); got != Ethernet10G.Bandwidth() {
		t.Errorf("two-node min bandwidth %g, want 10GbE", got)
	}
}

func TestWeightMatrixUniform(t *testing.T) {
	topo := EightGPUQPI()
	w := topo.WeightMatrix(WeightUniform)
	for i := range w {
		for j := range w[i] {
			want := 1.0
			if i == j {
				want = 0
			}
			if w[i][j] != want {
				t.Errorf("uniform w[%d][%d] = %v, want %v", i, j, w[i][j], want)
			}
		}
	}
}

func TestWeightMatrixHierarchical(t *testing.T) {
	topo := ClusterB(2)
	w := topo.WeightMatrix(WeightHierarchical)
	// Fastest present inter-worker link (NVLink) costs 1.
	if w[0][1] != 1 {
		t.Errorf("NVLink pair weight %v, want 1", w[0][1])
	}
	// Cross-socket costs more, cross-node much more.
	if !(w[0][4] > w[0][1]) {
		t.Errorf("QPI weight %v not above NVLink %v", w[0][4], w[0][1])
	}
	if !(w[0][8] > 5*w[0][4]) {
		t.Errorf("Ethernet weight %v not ≫ QPI %v", w[0][8], w[0][4])
	}
	for i := range w {
		if w[i][i] != 0 {
			t.Errorf("diagonal w[%d][%d] = %v", i, i, w[i][i])
		}
	}
}

func TestEffectiveFlops(t *testing.T) {
	topo := &Topology{GPUFlops: 100}
	if got := topo.EffectiveFlops(); got != 1 { // default efficiency 0.01
		t.Errorf("default efficiency: %v, want 1", got)
	}
	topo.GPUEfficiency = 0.5
	if got := topo.EffectiveFlops(); got != 50 {
		t.Errorf("explicit efficiency: %v, want 50", got)
	}
}

func TestScaleOut(t *testing.T) {
	cases := []struct {
		gpus                 int
		nodes, perNode, sock int
	}{
		{1, 1, 1, 1}, {2, 1, 2, 1}, {4, 1, 4, 1},
		{5, 1, 5, 2}, {8, 1, 8, 2},
		{16, 2, 8, 2}, {24, 3, 8, 2},
	}
	for _, c := range cases {
		topo, err := ScaleOut(c.gpus)
		if err != nil {
			t.Fatalf("ScaleOut(%d): %v", c.gpus, err)
		}
		if topo.Nodes != c.nodes || topo.GPUsPerNode != c.perNode || topo.SocketsPerNode != c.sock {
			t.Errorf("ScaleOut(%d) = %d/%d/%d, want %d/%d/%d", c.gpus,
				topo.Nodes, topo.GPUsPerNode, topo.SocketsPerNode, c.nodes, c.perNode, c.sock)
		}
		if topo.NumWorkers() != c.gpus {
			t.Errorf("ScaleOut(%d) has %d workers", c.gpus, topo.NumWorkers())
		}
	}
}

func TestScaleOutErrors(t *testing.T) {
	for _, g := range []int{0, -1, 9, 12, 17} {
		if _, err := ScaleOut(g); err == nil {
			t.Errorf("ScaleOut(%d) accepted", g)
		}
	}
}

func TestScaleOutDegradesInterconnect(t *testing.T) {
	// The Figure 10 mechanism: the slowest link worsens as the cluster
	// grows.
	t4, _ := ScaleOut(4)
	t8, _ := ScaleOut(8)
	t16, _ := ScaleOut(16)
	if !(t4.MinBandwidth() > t8.MinBandwidth() && t8.MinBandwidth() > t16.MinBandwidth()) {
		t.Errorf("bandwidth should degrade: %g, %g, %g",
			t4.MinBandwidth(), t8.MinBandwidth(), t16.MinBandwidth())
	}
}

func TestFigure1Presets(t *testing.T) {
	if FourGPUNVLink().Link(0, 3) != NVLink {
		t.Error("4-GPU NVLink preset not NVLink-connected")
	}
	if FourGPUPCIe().Link(0, 3) != PCIe {
		t.Error("4-GPU PCIe preset not PCIe-connected")
	}
	q := EightGPUQPI()
	if q.Link(0, 3) != PCIe || q.Link(0, 7) != QPI {
		t.Error("8-GPU QPI preset link classification wrong")
	}
}
