// Package hetgmp is a Go reproduction of "HET-GMP: A Graph-based System
// Approach to Scaling Large Embedding Model Training" (Miao et al., SIGMOD
// 2022): a distributed embedding-model training system that models the
// relationship between data samples and embedding parameters as a bipartite
// graph, partitions that graph to maximise access locality (hybrid 1D
// edge-cut + 2D vertex-cut, Algorithm 1), and tolerates bounded staleness
// across embedding replicas at two graph-derived synchronisation points.
//
// The original system runs on GPU clusters over NCCL; this reproduction
// executes the same algorithms over a simulated cluster whose interconnect
// hierarchy (NVLink / PCIe / QPI / Ethernet) prices every byte the
// protocols move. Learning is real — float32 WDL/DCN training with
// measurable AUC — while time and traffic are modelled, which is exactly
// what the paper's evaluation quantifies.
//
// This root package is the public facade: it re-exports the pieces a
// downstream user composes (datasets, bigraphs, partitioners, cluster
// models, systems and experiments) from the internal implementation
// packages. See README.md for a tour and examples/ for runnable programs.
package hetgmp

import (
	"hetgmp/internal/bigraph"
	"hetgmp/internal/cluster"
	"hetgmp/internal/consistency"
	"hetgmp/internal/dataset"
	"hetgmp/internal/embed"
	"hetgmp/internal/engine"
	"hetgmp/internal/experiments"
	"hetgmp/internal/invariant"
	"hetgmp/internal/nn"
	"hetgmp/internal/partition"
	"hetgmp/internal/systems"
)

// ---------------------------------------------------------------------------
// Datasets (internal/dataset)

// Dataset is an in-memory CTR dataset: samples of categorical features plus
// click labels.
type Dataset = dataset.Dataset

// Sample is one training example.
type Sample = dataset.Sample

// DatasetConfig controls synthetic dataset generation.
type DatasetConfig = dataset.Config

// Preset dataset names matching the paper's Table 1.
const (
	Avazu   = dataset.Avazu
	Criteo  = dataset.Criteo
	Company = dataset.Company
)

// NewDataset generates one of the paper's datasets at the given scale
// (1e-3 ≈ tens of thousands of samples).
func NewDataset(name string, scale float64, seed uint64) (*Dataset, error) {
	return dataset.New(name, scale, seed)
}

// GenerateDataset synthesises a dataset from an explicit configuration.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// ---------------------------------------------------------------------------
// Bigraph (internal/bigraph)

// Bigraph is the sample–embedding bipartite graph of Section 5.1.
type Bigraph = bigraph.Bigraph

// NewBigraph builds the bigraph of a dataset.
func NewBigraph(d *Dataset) *Bigraph { return bigraph.FromDataset(d) }

// ---------------------------------------------------------------------------
// Cluster model (internal/cluster)

// Topology describes a simulated GPU cluster.
type Topology = cluster.Topology

// LinkType classifies an interconnect.
type LinkType = cluster.LinkType

// Cluster presets from the paper's evaluation.
var (
	// ClusterA returns nodes of 8 RTX TITANs on PCIe with 1 GbE.
	ClusterA = cluster.ClusterA
	// ClusterB returns nodes of 8 V100s on NVLink with 10 GbE.
	ClusterB = cluster.ClusterB
	// ScaleOut returns a cluster-B topology with exactly n GPUs.
	ScaleOut = cluster.ScaleOut
)

// ---------------------------------------------------------------------------
// Partitioning (internal/partition)

// Assignment maps samples and embeddings to workers, with replicas.
type Assignment = partition.Assignment

// HybridConfig parameterises Algorithm 1.
type HybridConfig = partition.HybridConfig

// HybridResult is Algorithm 1's output with per-round history.
type HybridResult = partition.HybridResult

// PartitionQuality summarises an assignment (Table 3's metrics).
type PartitionQuality = partition.Quality

// RandomPartition hash-partitions samples and embeddings (the paper's
// Random baseline and the HugeCTR model).
func RandomPartition(g *Bigraph, n int, seed uint64) *Assignment {
	return partition.Random(g, n, seed)
}

// HybridPartition runs Algorithm 1: iterative 1D edge-cut plus 2D
// vertex-cut replication.
func HybridPartition(g *Bigraph, cfg HybridConfig) (*HybridResult, error) {
	return partition.Hybrid(g, cfg)
}

// DefaultHybridConfig returns the paper's partitioner settings for n
// workers.
func DefaultHybridConfig(n int) HybridConfig { return partition.DefaultHybridConfig(n) }

// EvaluatePartition measures remote accesses, balance and replication.
func EvaluatePartition(g *Bigraph, a *Assignment, weights [][]float64) PartitionQuality {
	return partition.Evaluate(g, a, weights)
}

// ---------------------------------------------------------------------------
// Models (internal/nn)

// Network is the dense part of a CTR model (WDL or DCN).
type Network = nn.Network

// NewWDL builds a Wide & Deep network.
func NewWDL(fields, dim int, seed uint64) Network {
	return nn.NewWDL(nn.WDLConfig{Fields: fields, Dim: dim, Seed: seed})
}

// NewDCN builds a Deep & Cross network.
func NewDCN(fields, dim int, seed uint64) Network {
	return nn.NewDCN(nn.DCNConfig{Fields: fields, Dim: dim, Seed: seed})
}

// NewDeepFM builds a DeepFM network (an additional embedding model the
// paper's Section 5.1 lists as supported by the bigraph abstraction).
func NewDeepFM(fields, dim int, seed uint64) Network {
	return nn.NewDeepFM(nn.DeepFMConfig{Fields: fields, Dim: dim, Seed: seed})
}

// AUC computes the area under the ROC curve.
func AUC(scores, labels []float32) float64 { return nn.AUC(scores, labels) }

// ---------------------------------------------------------------------------
// Training systems (internal/systems, internal/engine)

// System names one of the five training architectures of the evaluation.
type System = systems.System

// The systems of the paper's evaluation.
const (
	TFPS     = systems.TFPS
	Parallax = systems.Parallax
	HugeCTR  = systems.HugeCTR
	HETMP    = systems.HETMP
	HETGMP   = systems.HETGMP
)

// SystemOptions configures a system build.
type SystemOptions = systems.Options

// Trainer executes one training run.
type Trainer = engine.Trainer

// TrainResult summarises a run: convergence history, simulated time,
// communication breakdown.
type TrainResult = engine.Result

// StalenessInf disables staleness-triggered synchronisation (s = ∞).
const StalenessInf = embed.StalenessInf

// Build assembles a trainer for the given system.
func Build(sys System, opt SystemOptions) (*Trainer, error) { return systems.Build(sys, opt) }

// ---------------------------------------------------------------------------
// Consistency protocols (internal/consistency)

// Protocol names a consistency model (BSP, ASP, SSP-style bounded, or the
// paper's graph-based bounded asynchrony).
type Protocol = consistency.Protocol

// The supported protocols.
const (
	BSP          = consistency.BSP
	ASP          = consistency.ASP
	Bounded      = consistency.Bounded
	GraphBounded = consistency.GraphBounded
)

// ResolveProtocol maps a protocol and staleness bound to engine settings.
func ResolveProtocol(p Protocol, s int64) (consistency.Config, error) {
	return consistency.Resolve(p, s)
}

// ---------------------------------------------------------------------------
// Runtime invariants (internal/invariant)

// InvariantViolation is the structured report a tripped runtime invariant
// panics with: component, rule, worker, embedding id, the clock values in
// play and the violated bound. Enable checking per run with
// SystemOptions.CheckInvariants (or the CLIs' -check flag); it is always on
// under `go test`.
type InvariantViolation = invariant.Violation

// InvariantCounts is the per-rule checks/violations snapshot a run exports
// (TrainResult.Invariants), so callers can assert "N checks, 0 violations"
// programmatically.
type InvariantCounts = invariant.Counts

// ---------------------------------------------------------------------------
// Cluster profiling (internal/cluster)

// ClusterProfile holds measured pairwise communication speeds.
type ClusterProfile = cluster.Profile

// ProfileCluster measures every worker pair of a topology; feed the result
// to HybridConfig.Weights via ClusterProfile.WeightMatrix.
func ProfileCluster(t *Topology) *ClusterProfile { return cluster.ProfileTopology(t) }

// ---------------------------------------------------------------------------
// Experiments (internal/experiments)

// ExperimentParams are the shared experiment knobs.
type ExperimentParams = experiments.Params

// DefaultExperimentParams returns the standard single-machine settings.
func DefaultExperimentParams() ExperimentParams { return experiments.Defaults() }

// Experiments maps paper labels ("fig1" … "table3", "capacity") to runners.
var Experiments = experiments.Registry

// ExperimentOrder lists experiment IDs in the paper's order.
var ExperimentOrder = experiments.Order
